#pragma once
// The dynamic-programming engine (Alg. 2), templated on the count
// table so the innermost loop is compile-time dispatched.
//
// One engine instance serves one (graph, template, partition, k)
// combination and may run many iterations; tables are allocated per
// node when its pass starts and freed on the partition's free_after
// schedule (≤ ~4 live at once, §III-C), except in keep_tables mode
// used by the embedding extractor.
//
// Kernel selection per non-leaf subtemplate S (size h, active child
// size a, passive size p = h - a):
//   * h == 2          — both children are single vertices: counts come
//                       straight from the two endpoint colors.
//   * a == 1          — the paper's one-at-a-time fast path: only the
//                       C(k-1, h-1) colorsets containing color(v) are
//                       touched (§III-D).
//   * p == 1          — mirrored fast path keyed by the neighbor color.
//   * otherwise       — general split-table kernel (Alg. 2 lines 7-15).
//
// The default kernels are the *vectorizable* rebuild (DESIGN.md §8):
//
//   * Sparse vertex frontiers — every computed table exports its
//     nonzero-vertex list and compute_tables threads it upward, so a
//     parent stage iterates only its active child's surviving vertices
//     (leaf-rooted stages intersect with the per-label vertex lists)
//     instead of scanning all n and probing has_vertex per vertex.
//   * SoA split layout + row borrowing — hoisted active entries live
//     in parallel parent/passive/value arrays sorted by passive index,
//     and the inner multiply-accumulate runs over contiguous rows
//     borrowed from the tables (Table::row_ptr) under `omp simd`, with
//     no per-element pointer chase.
//
// The pre-frontier scalar kernels are retained behind
// DpEngineOptions::reference_kernels; both paths produce identical
// estimates (all DP values are exact integer counts in doubles, so
// the reassociated sums match bit for bit while counts stay below
// 2^53), which tests/test_counter.cpp pins down and bench/micro_dp
// measures.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "comb/binomial.hpp"
#include "comb/split_table.hpp"
#include "core/spmm_kernels.hpp"
#include "dp/count_table.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "run/guard.hpp"
#include "run/spill.hpp"
#include "treelet/partition.hpp"
#include "treelet/tree_template.hpp"
#include "util/mem_tracker.hpp"

namespace fascia {

/// Colors are small ints; one byte per vertex.
using ColorArray = std::vector<std::uint8_t>;

/// Per-label sorted vertex lists — the frontier a labeled leaf
/// subtemplate induces.  Graph-wide and engine-independent, so outer
/// parallel modes build it once and share it across engine copies.
struct LabelFrontiers {
  std::vector<std::vector<VertexId>> by_label;  ///< index = label value

  static std::shared_ptr<const LabelFrontiers> build(const Graph& graph) {
    auto out = std::make_shared<LabelFrontiers>();
    if (graph.has_labels()) {
      out->by_label.resize(static_cast<std::size_t>(graph.num_label_values()));
      for (VertexId v = 0; v < graph.num_vertices(); ++v) {
        out->by_label[graph.label(v)].push_back(v);
      }
    }
    return out;
  }
};

/// Dirty-vertex balls for the incremental delta path: BFS distance
/// from the endpoints of every changed edge, measured on the POST-delta
/// graph, capped at `radius` (= template size - 1).  A DP row for a
/// subtemplate of size s at vertex v can change only if
/// dist(v, seeds) <= s - 1: a gained embedding reaches an inserted
/// edge within s-1 new-graph hops, and a lost embedding's tree path
/// from v to its first deleted-edge use survives (undeleted) in the
/// new graph.  Leaf tables depend only on colorings, so nothing is
/// recomputed at radius < 1.
struct DirtyBalls {
  int radius = 0;
  /// BFS distance per vertex; -1 = farther than radius (clean at every
  /// stage).
  std::vector<int> distance;
  /// ball[r] = sorted {v : distance[v] <= r}, r in [0, radius].
  std::vector<std::vector<VertexId>> ball;

  [[nodiscard]] bool dirty(VertexId v, int r) const noexcept {
    const int d = distance[static_cast<std::size_t>(v)];
    return d >= 0 && d <= r;
  }

  /// Vertices within `r` hops of any seed (r clamped to the built
  /// radius — larger stages reuse the outermost ball).
  [[nodiscard]] const std::vector<VertexId>& at(int r) const noexcept {
    return ball[static_cast<std::size_t>(std::clamp(r, 0, radius))];
  }

  static DirtyBalls build(const Graph& graph,
                          const std::vector<VertexId>& seeds, int radius) {
    DirtyBalls out;
    out.radius = std::max(0, radius);
    out.distance.assign(static_cast<std::size_t>(graph.num_vertices()), -1);
    out.ball.resize(static_cast<std::size_t>(out.radius) + 1);
    std::vector<VertexId> level = seeds;  // sorted unique by contract
    for (const VertexId v : level) {
      out.distance[static_cast<std::size_t>(v)] = 0;
    }
    out.ball[0] = level;
    for (int r = 1; r <= out.radius; ++r) {
      std::vector<VertexId> next;
      for (const VertexId v : level) {
        for (const VertexId u : graph.neighbors(v)) {
          if (out.distance[static_cast<std::size_t>(u)] >= 0) continue;
          out.distance[static_cast<std::size_t>(u)] = r;
          next.push_back(u);
        }
      }
      std::sort(next.begin(), next.end());
      out.ball[static_cast<std::size_t>(r)].resize(
          out.ball[static_cast<std::size_t>(r) - 1].size() + next.size());
      std::merge(out.ball[static_cast<std::size_t>(r) - 1].begin(),
                 out.ball[static_cast<std::size_t>(r) - 1].end(),
                 next.begin(), next.end(),
                 out.ball[static_cast<std::size_t>(r)].begin());
      level = std::move(next);
    }
    return out;
  }
};

/// Engine tuning knobs (all default to the production fast path).
struct DpEngineOptions {
  /// Run the pre-frontier scalar kernels instead of the vectorized
  /// ones.  Test/bench hook: estimates are identical either way.
  bool reference_kernels = false;

  /// Run the linear-algebra kernel family (core/spmm_kernels.hpp,
  /// DESIGN.md §13): eligible stages export the passive child's table
  /// as a column-blocked dense multivector and run a masked SpMM over
  /// the stage frontier instead of per-edge row gathers.  Stages where
  /// the export cannot amortize fall back to the frontier kernels per
  /// stage (the two families are bit-identical, so mixing is safe).
  /// Ignored under reference_kernels.
  bool spmm_kernels = false;

  /// Record one DpStageStats entry per computed node pass.
  bool collect_stats = false;

  /// Shared per-label vertex lists; nullptr makes the engine build its
  /// own when the graph is labeled.
  std::shared_ptr<const LabelFrontiers> label_frontiers;

  /// Threads for the inner-parallel frontier sweep; 0 = the OpenMP
  /// default.  The hybrid scheduler sets this so each outer engine
  /// copy parallelizes its stages over its own thread share.
  int inner_threads = 0;

  /// Reverse-guided frontier sweep instead of forward-dynamic.  With a
  /// hub-first vertex order (degree/hybrid reorder) the heaviest
  /// vertices sit at the FRONT of every frontier; a forward guided
  /// schedule would pack them all into the first (largest) chunk.
  /// Sweeping the frontier back-to-front hands out the cheap tail in
  /// large chunks and the expensive hubs in the final small ones, so
  /// no single thread serializes the hub block.
  bool guided_schedule = false;

  /// Out-of-core paging (run/spill.hpp): with both knobs set, completed
  /// sub-template tables beyond spill_budget_bytes page to checksummed
  /// files in spill_dir and are restored right before the stage (or
  /// total read) that consumes them.  The eviction policy is Belady on
  /// the static stage schedule: the victim is the resident table whose
  /// next consuming stage is farthest away.  Restored rows re-commit
  /// through the table's own commit_row with doubles stored verbatim,
  /// so paged and in-memory passes are bit-identical.  Inert in
  /// keep_tables passes (the extractor needs every table resident).
  std::string spill_dir;
  std::size_t spill_budget_bytes = 0;
};

/// One computed node pass, for kernel benchmarking (bench/micro_dp).
struct DpStageStats {
  int node = 0;
  int parent_size = 0;
  int active_size = 0;
  char kernel = '?';             ///< 'P'air, 'A'=single-active, 'S'=single-passive, 'G'eneral;
                                 ///< lowercase 'a'/'g' = the SpMM forms
  double seconds = 0.0;
  std::uint64_t candidates = 0;  ///< vertices iterated by the pass
  std::uint64_t survivors = 0;   ///< nonzero rows committed (frontier out)
  std::uint64_t macs = 0;        ///< multiply-accumulates performed (fast path)
};

/// Human-readable kernel name for a DpStageStats::kernel tag.
inline const char* dp_kernel_name(char kernel) noexcept {
  switch (kernel) {
    case 'P':
      return "pair";
    case 'A':
      return "single_active";
    case 'S':
      return "single_passive";
    case 'G':
      return "general";
    case 'a':
      return "single_active_spmm";
    case 'g':
      return "general_spmm";
  }
  return "unknown";
}

/// Merge per-pass engine stats into one report entry per node:
/// `passes` counts contributing colorings, the numeric columns
/// accumulate.  Node order is partition order — deterministic across
/// thread counts and modes.
inline void merge_stage_stats(const std::vector<DpStageStats>& stats,
                              const char* table_name,
                              std::vector<obs::ReportStage>* out) {
  for (const DpStageStats& stat : stats) {
    obs::ReportStage* slot = nullptr;
    for (obs::ReportStage& existing : *out) {
      if (existing.node == stat.node) {
        slot = &existing;
        break;
      }
    }
    if (slot == nullptr) {
      out->emplace_back();
      slot = &out->back();
      slot->node = stat.node;
      slot->kernel = dp_kernel_name(stat.kernel);
      slot->table = table_name;
      slot->parent_size = stat.parent_size;
      slot->active_size = stat.active_size;
    }
    ++slot->passes;
    slot->seconds += stat.seconds;
    slot->candidates += static_cast<double>(stat.candidates);
    slot->survivors += static_cast<double>(stat.survivors);
    slot->macs += static_cast<double>(stat.macs);
  }
}

namespace detail {

/// Registry instruments for one computed stage pass (DESIGN.md §10).
/// Callers gate on obs::enabled(); the handles are interned once.
inline void record_stage_metrics(char kernel, double seconds,
                                 std::uint64_t survivors,
                                 std::int64_t num_vertices,
                                 std::size_t table_bytes) {
  using obs::InstrumentKind;
  using obs::Metric;
  static const Metric pair("dp.stage.pair", InstrumentKind::kCounter);
  static const Metric active("dp.stage.single_active",
                             InstrumentKind::kCounter);
  static const Metric passive("dp.stage.single_passive",
                              InstrumentKind::kCounter);
  static const Metric general("dp.stage.general", InstrumentKind::kCounter);
  static const Metric active_spmm("dp.stage.single_active_spmm",
                                  InstrumentKind::kCounter);
  static const Metric general_spmm("dp.stage.general_spmm",
                                   InstrumentKind::kCounter);
  static const Metric stage_seconds("dp.stage.seconds",
                                    InstrumentKind::kTimeHistogram);
  static const Metric occupancy("dp.frontier.occupancy",
                                InstrumentKind::kValueHistogram);
  static const Metric bytes("dp.table.bytes", InstrumentKind::kByteHistogram);
  switch (kernel) {
    case 'P':
      pair.add();
      break;
    case 'A':
      active.add();
      break;
    case 'S':
      passive.add();
      break;
    case 'a':
      active_spmm.add();
      break;
    case 'g':
      general_spmm.add();
      break;
    default:
      general.add();
      break;
  }
  stage_seconds.observe(seconds);
  if (num_vertices > 0) {
    occupancy.observe(static_cast<double>(survivors) /
                      static_cast<double>(num_vertices));
  }
  bytes.observe(static_cast<double>(table_bytes));
}

/// Counter of bytes written to out-of-core table pages (CI's smoke job
/// asserts it moves when a run is forced to spill).
inline void record_spilled_bytes(std::size_t bytes) {
  static const obs::Metric spilled("dp.table.spilled_bytes",
                                   obs::InstrumentKind::kCounter);
  spilled.add(static_cast<double>(bytes));
}

/// Process-unique tag so concurrent engine copies sharing one spill
/// directory never collide on page file names.
inline int next_spill_tag() noexcept {
  static std::atomic<int> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

/// Tables without contiguous rows that can still reconstruct a dense
/// row from their packed nonzeros (succinct).  The kernels' sequential
/// read patterns decode or accumulate whole rows in O(nnz) instead of
/// paying a rank or binary search per get() probe.
template <class T>
concept DecodableRowTable = requires(const T& t, double* out) {
  t.decode_row(VertexId{0}, out);
  t.add_row_into(VertexId{0}, out);
};

/// Tables that can also enumerate a row's stored nonzeros in ascending
/// slot order.  Kernels with slot-sorted split lists merge-join
/// against the enumeration — O(nnz + m) per row, no dense decode.
template <class T>
concept SparseRowTable = requires(const T& t) {
  t.for_each_nonzero(VertexId{0}, [](ColorsetIndex, double) {});
};

template <class Table>
class DpEngine {
 public:
  /// The engine is independent of the originating template(s): leaf
  /// label filters travel inside the partition nodes (root_label), so
  /// a merged multi-template DAG (sched::plan_batch) runs unchanged.
  DpEngine(const Graph& graph, const PartitionTree& partition, int num_colors,
           DpEngineOptions options = {})
      : graph_(graph), partition_(partition), k_(num_colors),
        opts_(std::move(options)) {
    const int num_nodes = partition_.num_nodes();
    tables_.resize(static_cast<std::size_t>(num_nodes));
    frontiers_.resize(static_cast<std::size_t>(num_nodes));
    if (spill_enabled()) {
      spill_tag_ = detail::next_spill_tag();
      spilled_to_.resize(static_cast<std::size_t>(num_nodes));
      node_bytes_.assign(static_cast<std::size_t>(num_nodes), 0);
      consumers_.resize(static_cast<std::size_t>(num_nodes));
      for (int i = 0; i < num_nodes; ++i) {
        const Subtemplate& node = partition_.node(i);
        if (node.is_leaf()) continue;
        // Ascending by construction (children precede parents), so
        // next_use() can scan for the first entry past a stage.
        consumers_[static_cast<std::size_t>(node.active)].push_back(i);
        consumers_[static_cast<std::size_t>(node.passive)].push_back(i);
      }
    }
    single_splits_.resize(static_cast<std::size_t>(k_) + 1);
    node_single_.assign(static_cast<std::size_t>(num_nodes), nullptr);
    node_general_.assign(static_cast<std::size_t>(num_nodes), nullptr);
    node_active_bound_.assign(static_cast<std::size_t>(num_nodes), 0);
    for (int i = 0; i < num_nodes; ++i) {
      const Subtemplate& node = partition_.node(i);
      if (node.is_leaf()) continue;
      const int h = node.size();
      const int a = partition_.node(node.active).size();
      if (a == 1 || h - a == 1) {
        if (h >= 2 && !single_splits_[static_cast<std::size_t>(h)]) {
          single_splits_[static_cast<std::size_t>(h)].emplace(k_, h);
        }
        node_single_[static_cast<std::size_t>(i)] =
            &*single_splits_[static_cast<std::size_t>(h)];
      }
      if (a > 1 && h - a > 1) {
        auto [it, inserted] =
            general_splits_.try_emplace(std::make_pair(h, a), k_, h, a);
        (void)inserted;
        node_general_[static_cast<std::size_t>(i)] = &it->second;
        // Nonzero active-row entries per vertex: only colorsets
        // containing color(v) can be nonzero, so at most C(k-1, a-1)
        // of the C(k, a) groups survive the hoist — and the MAC pairs
        // they own number C(k-1,a-1)·C(k-a,h-a) = C(k-1,h-1)·C(h-1,a-1),
        // the per-vertex work bound of §III-D.  Reserved once per
        // thread; no per-vertex reallocation.
        node_active_bound_[static_cast<std::size_t>(i)] =
            static_cast<std::size_t>(choose(k_ - 1, a - 1));
      }
    }
    if (graph_.has_labels() && opts_.label_frontiers == nullptr) {
      opts_.label_frontiers = LabelFrontiers::build(graph_);
    }
    // Pair-index matrix for the h == 2 kernel: index of {c1, c2}.
    pair_index_.assign(static_cast<std::size_t>(k_) * k_, 0);
    for (int c1 = 0; c1 < k_; ++c1) {
      for (int c2 = 0; c2 < k_; ++c2) {
        if (c1 == c2) continue;
        const int lo = std::min(c1, c2), hi = std::max(c1, c2);
        const std::array<int, 2> colors = {lo, hi};
        pair_index_[static_cast<std::size_t>(c1) * k_ + c2] =
            colorset_index(colors);
      }
    }
  }

  DpEngine(const Graph& graph, const TreeTemplate& tmpl,
           const PartitionTree& partition, int num_colors,
           DpEngineOptions options = {})
      : DpEngine(graph, partition, num_colors, std::move(options)) {
    (void)tmpl;  // labels already live in the partition nodes
  }

  /// One bottom-up DP pass for a fixed coloring, filling the per-node
  /// tables.  When `needed` is non-null (size num_nodes) only flagged
  /// nodes are computed — the batch scheduler masks off stages no
  /// active job demands; the mask must be closed under children.
  /// Intermediate tables are freed on the free_after schedule unless
  /// keep_tables; nodes with free_after == -1 survive until
  /// release_all_tables() so callers can read them.
  void compute_tables(const ColorArray& colors, bool parallel_inner,
                      const std::vector<char>* needed = nullptr,
                      bool keep_tables = false) {
    release_all_tables();
    const int num_nodes = partition_.num_nodes();
    for (int i = 0; i < num_nodes; ++i) {
      // Cooperative stop (run/guard.hpp): polled between stage passes
      // so a deadline or budget trips within one node pass, not one
      // full iteration.  The aborted pass's tables are released; the
      // caller sees guard->stopped() and discards the iteration.
      if (guard_ != nullptr && guard_->poll()) {
        release_all_tables();
        return;
      }
      const Subtemplate& node = partition_.node(i);
      const bool wanted =
          needed == nullptr || (*needed)[static_cast<std::size_t>(i)] != 0;
      const bool paging = spill_enabled() && !keep_tables;
      if (!node.is_leaf() && wanted) {
        if (paging) {
          // Children computed earlier may have been paged out; the
          // kernels read them directly, so restore before the pass.
          ensure_resident(node.active);
          ensure_resident(node.passive);
        }
        compute_node(i, colors, parallel_inner);
        if (paging) {
          node_bytes_[static_cast<std::size_t>(i)] =
              tables_[static_cast<std::size_t>(i)]->bytes();
          resident_bytes_ += node_bytes_[static_cast<std::size_t>(i)];
        }
      }
      if (!keep_tables) {
        for (int j = 0; j < i; ++j) {
          if (partition_.node(j).free_after == i) free_node(j);
        }
        if (paging) evict_over_budget(i);
      }
    }
  }

  /// Colorful-embedding total of a computed non-leaf node's table
  /// (restoring it first if it was paged out).
  [[nodiscard]] double node_total(int node) {
    ensure_resident(node);
    return tables_[static_cast<std::size_t>(node)]->total();
  }

  /// Count of graph vertices matching a leaf node's label filter — the
  /// DP base case a single-vertex template degenerates to.
  [[nodiscard]] double leaf_count(int node) const {
    const Subtemplate& leaf = partition_.node(node);
    double count = 0.0;
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      if (leaf_matches(leaf, v)) count += 1.0;
    }
    return count;
  }

  /// One full bottom-up DP pass for a fixed coloring; returns the sum
  /// over the root table (Alg. 2 line 20).  When per_vertex is
  /// non-null it must have size n; root-table vertex totals are
  /// *added* into it.
  double run(const ColorArray& colors, bool parallel_inner,
             std::vector<double>* per_vertex = nullptr,
             bool keep_tables = false) {
    compute_tables(colors, parallel_inner, nullptr, keep_tables);
    if (guard_ != nullptr && guard_->stopped()) return 0.0;

    const int root = partition_.root_node();
    const Subtemplate& root_node = partition_.node(root);
    if (root_node.is_leaf()) {
      // Single-vertex template: every (label-matching) vertex counts 1.
      double count = 0.0;
      for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
        if (leaf_matches(root_node, v)) {
          count += 1.0;
          if (per_vertex != nullptr) {
            (*per_vertex)[static_cast<std::size_t>(v)] += 1.0;
          }
        }
      }
      return count;
    }

    // The last eviction pass may have paged the root itself out.
    ensure_resident(root);
    const Table& table = *tables_[static_cast<std::size_t>(root)];
    if (per_vertex != nullptr) {
      for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
        (*per_vertex)[static_cast<std::size_t>(v)] += table.vertex_total(v);
      }
    }
    const double total = table.total();
    if (!keep_tables) release_all_tables();
    return total;
  }

  /// Table for a node (nullptr for leaves or freed nodes); valid after
  /// run(..., keep_tables = true).
  [[nodiscard]] const Table* table(int node) const noexcept {
    return tables_[static_cast<std::size_t>(node)].get();
  }

  /// Nonzero-vertex list of a computed node's table (empty for leaves,
  /// freed nodes, or reference-kernel passes).  Same lifetime as the
  /// node's table.
  [[nodiscard]] const std::vector<VertexId>& frontier(int node)
      const noexcept {
    return frontiers_[static_cast<std::size_t>(node)];
  }

  /// Retained DP state of one coloring's pass: every non-leaf table
  /// plus its frontier, as left behind by run(..., keep_tables = true)
  /// or run_delta().  Moved out per iteration by the incremental
  /// counter (core/incremental.hpp) and re-adopted before the next
  /// recount of the same iteration.
  struct Retained {
    std::vector<std::unique_ptr<Table>> tables;
    std::vector<std::vector<VertexId>> frontiers;
  };

  /// Per-pass work accounting for the delta path (aggregated across
  /// iterations into CountResult::delta).
  struct DeltaPassStats {
    std::uint64_t rows_recomputed = 0;
    std::uint64_t rows_copied = 0;
    int stages_recomputed = 0;
  };

  /// Moves the current tables/frontiers out (leaving empty slots);
  /// valid after run(..., keep_tables = true) or run_delta().
  [[nodiscard]] Retained take_retained() {
    Retained out;
    out.tables = std::move(tables_);
    out.frontiers = std::move(frontiers_);
    tables_.clear();
    tables_.resize(static_cast<std::size_t>(partition_.num_nodes()));
    frontiers_.assign(static_cast<std::size_t>(partition_.num_nodes()),
                      std::vector<VertexId>());
    return out;
  }

  /// Installs previously taken retained state.  The state must come
  /// from an engine over the same partition and table layout.
  void adopt_retained(Retained&& retained) {
    release_all_tables();
    tables_ = std::move(retained.tables);
    frontiers_ = std::move(retained.frontiers);
    tables_.resize(static_cast<std::size_t>(partition_.num_nodes()));
    frontiers_.resize(static_cast<std::size_t>(partition_.num_nodes()));
  }

  /// Incremental recount after a graph delta — the engine half of the
  /// delta path.  Preconditions: spill disabled, reference_kernels
  /// off, graph_ is the POST-delta graph, and tables_/frontiers_ hold
  /// the retained state of this configuration's previous pass over the
  /// PRE-delta graph under the SAME coloring (adopt_retained).
  ///
  /// Each non-leaf stage of size h is recomputed restricted to the
  /// dirty ball of radius h-1 (leaf tables depend only on colors and
  /// are never materialized).  Rows outside the ball are preserved by
  /// one of two routes: patchable layouts (CompactTable) keep the
  /// RETAINED table and overwrite only the ball rows in place, so the
  /// pass never touches the O(n) clean region; the other layouts copy
  /// every clean row verbatim into the fresh table (run/spill.hpp's
  /// decode -> commit_row round trip, proven bit-exact).  The
  /// resulting tables, frontiers, and return value are bit-identical
  /// to a full run(colors, ..., keep_tables = true) on the new graph
  /// either way.
  double run_delta(const ColorArray& colors, bool parallel_inner,
                   const DirtyBalls& dirty,
                   DeltaPassStats* delta_stats = nullptr,
                   std::vector<double>* per_vertex = nullptr) {
    const int num_nodes = partition_.num_nodes();
    std::vector<std::unique_ptr<Table>> old_tables = std::move(tables_);
    std::vector<std::vector<VertexId>> old_frontiers = std::move(frontiers_);
    old_tables.resize(static_cast<std::size_t>(num_nodes));
    old_frontiers.resize(static_cast<std::size_t>(num_nodes));
    tables_.clear();
    tables_.resize(static_cast<std::size_t>(num_nodes));
    frontiers_.assign(static_cast<std::size_t>(num_nodes),
                      std::vector<VertexId>());

    std::vector<VertexId> restricted;  // ball ∩ new active frontier (S/G)
    std::vector<VertexId> clean;       // retained rows kept verbatim
    std::vector<double> rowbuf;
    for (int i = 0; i < num_nodes; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const Subtemplate& node = partition_.node(i);
      if (node.is_leaf()) continue;
      const int h = node.size();
      const std::vector<VertexId>& ball = dirty.at(h - 1);
      if (ball.empty() && old_tables[idx] != nullptr) {
        // Empty delta: nothing inside any ball, the retained stage is
        // the new stage.
        tables_[idx] = std::move(old_tables[idx]);
        frontiers_[idx] = std::move(old_frontiers[idx]);
        continue;
      }
      // Pair / single-active stages draw candidates from a leaf
      // frontier (or all vertices): the ball stands in directly, with
      // the leaf label filter re-applied per vertex.  Single-passive /
      // general stages draw from the active child's (already rebuilt)
      // frontier: restrict to the intersection so the survivor set
      // matches a full pass exactly — dense tables would otherwise
      // commit spurious zero rows for ball vertices off the frontier.
      const int a = partition_.node(node.active).size();
      if (h == 2 || a == 1) {
        delta_restrict_ = &ball;
      } else {
        const std::vector<VertexId>& af =
            frontiers_[static_cast<std::size_t>(node.active)];
        restricted.clear();
        for (const VertexId v : ball) {
          if (std::binary_search(af.begin(), af.end(), v)) {
            restricted.push_back(v);
          }
        }
        delta_restrict_ = &restricted;
      }
      compute_node(i, colors, parallel_inner);
      delta_restrict_ = nullptr;

      std::vector<VertexId>& fresh_frontier = frontiers_[idx];
      if (delta_stats != nullptr) {
        ++delta_stats->stages_recomputed;
        delta_stats->rows_recomputed += fresh_frontier.size();
      }
      // Preserve the clean rows: every retained-frontier vertex
      // outside the ball kept its row (the dirty-ball bound).  The
      // retained frontier entries are kept even when rowless (zero-row
      // carry-overs, see kernel_single_passive) — a full pass keeps
      // them too.
      Table* old = old_tables[idx].get();
      const std::vector<VertexId>& old_frontier = old_frontiers[idx];
      clean.clear();
      if constexpr (Table::kPatchableRows) {
        if (old != nullptr) {
          // Patch route: the RETAINED table stays; only ball rows are
          // rewritten from the freshly computed dirty stage (or
          // cleared, for ball vertices a full pass would not commit —
          // off the new frontier or recomputed to all-zero).  Clean
          // rows are physically untouched, so the pass costs O(ball),
          // not O(n).
          const Table& fresh = *tables_[idx];
          const std::uint32_t width = fresh.num_colorsets();
          for (const VertexId v : ball) {
            const double* prow = fresh.row_ptr(v);
            if (prow != nullptr) {
              old->patch_row(v, std::span<const double>(prow, width));
            } else {
              old->clear_row(v);
            }
          }
          for (const VertexId v : old_frontier) {
            if (!dirty.dirty(v, h - 1)) clean.push_back(v);
          }
          if (delta_stats != nullptr) {
            delta_stats->rows_copied += clean.size();
          }
          tables_[idx] = std::move(old_tables[idx]);
        }
      } else if (old != nullptr) {
        // Copy route: splice every clean row verbatim into the fresh
        // table.
        Table& fresh = *tables_[idx];
        const std::uint32_t width = fresh.num_colorsets();
        rowbuf.resize(width);
        for (const VertexId v : old_frontier) {
          if (dirty.dirty(v, h - 1)) continue;
          clean.push_back(v);
          if constexpr (Table::kContiguousRows) {
            const double* prow = old->row_ptr(v);
            if (prow == nullptr) continue;
            std::copy(prow, prow + width, rowbuf.begin());
          } else if constexpr (DecodableRowTable<Table>) {
            if (!old->has_vertex(v)) continue;
            old->decode_row(v, rowbuf.data());
          } else {
            if (!old->has_vertex(v)) continue;
            for (std::uint32_t c = 0; c < width; ++c) {
              rowbuf[static_cast<std::size_t>(c)] = old->get(v, c);
            }
          }
          fresh.commit_row(v, rowbuf);
          if (delta_stats != nullptr) ++delta_stats->rows_copied;
        }
      }
      if (!clean.empty()) {
        std::vector<VertexId> merged(clean.size() + fresh_frontier.size());
        std::merge(clean.begin(), clean.end(), fresh_frontier.begin(),
                   fresh_frontier.end(), merged.begin());
        fresh_frontier = std::move(merged);
      }
      // The retained stage is fully absorbed (or adopted): drop any
      // leftover now to bound the transient peak at one duplicated
      // stage.
      old_tables[idx].reset();
      std::vector<VertexId>().swap(old_frontiers[idx]);
    }

    const int root = partition_.root_node();
    const Subtemplate& root_node = partition_.node(root);
    if (root_node.is_leaf()) {
      double count = 0.0;
      for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
        if (leaf_matches(root_node, v)) {
          count += 1.0;
          if (per_vertex != nullptr) {
            (*per_vertex)[static_cast<std::size_t>(v)] += 1.0;
          }
        }
      }
      return count;
    }
    const Table& table = *tables_[static_cast<std::size_t>(root)];
    if (per_vertex != nullptr) {
      for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
        (*per_vertex)[static_cast<std::size_t>(v)] += table.vertex_total(v);
      }
    }
    return table.total();
  }

  [[nodiscard]] const PartitionTree& partition() const noexcept {
    return partition_;
  }
  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] int num_colors() const noexcept { return k_; }

  /// Attaches a cooperative stop condition; nullptr detaches.  The
  /// guard must outlive every subsequent compute_tables()/run() call.
  void set_guard(const RunGuard* guard) noexcept { guard_ = guard; }

  /// Per-node-pass kernel measurements, appended across compute calls
  /// while DpEngineOptions::collect_stats is set.
  [[nodiscard]] const std::vector<DpStageStats>& stage_stats()
      const noexcept {
    return stats_;
  }
  void clear_stage_stats() noexcept { stats_.clear(); }

  void release_all_tables() noexcept {
    for (int j = 0; j < static_cast<int>(tables_.size()); ++j) free_node(j);
  }

  /// Out-of-core paging activity since construction: bytes of table
  /// pages written to spill_dir and the number of page-out events.
  /// Always 0 when the spill knobs are unset.
  [[nodiscard]] std::size_t spilled_bytes() const noexcept {
    return spilled_bytes_;
  }
  [[nodiscard]] int spill_events() const noexcept { return spill_events_; }

  /// Largest SpMM multivector export held at once (slabs + vertex
  /// remap) since construction; 0 unless spmm_kernels stages ran.
  /// The measured side of run::estimate_spmm_multivector_bytes.
  [[nodiscard]] std::size_t spmm_workspace_bytes() const noexcept {
    return spmm_peak_bytes_;
  }

  ~DpEngine() { release_all_tables(); }  // drops any leftover page files
  DpEngine(DpEngine&&) noexcept = default;
  DpEngine(const DpEngine&) = delete;
  DpEngine& operator=(const DpEngine&) = delete;
  DpEngine& operator=(DpEngine&&) = delete;

 private:
  /// Leaf base case (Alg. 2 line 4) with the labeled-mode filter: a
  /// single-vertex subtemplate matches graph vertex v iff labels agree
  /// (§V-A).  The label is carried by the partition node so the engine
  /// needs no back-reference to the originating template.
  [[nodiscard]] bool leaf_matches(const Subtemplate& leaf,
                                  VertexId v) const noexcept {
    if (leaf.root_label < 0 || !graph_.has_labels()) return true;
    return leaf.root_label == static_cast<int>(graph_.label(v));
  }

  /// Vertex list a leaf subtemplate restricts the DP to: the label's
  /// frontier when the leaf is labeled, nullptr (= all vertices) when
  /// unlabeled.
  [[nodiscard]] const std::vector<VertexId>* leaf_frontier(
      const Subtemplate& leaf) const noexcept {
    if (leaf.root_label < 0 || !graph_.has_labels() ||
        opts_.label_frontiers == nullptr) {
      return nullptr;
    }
    const auto label = static_cast<std::size_t>(leaf.root_label);
    if (label >= opts_.label_frontiers->by_label.size()) return nullptr;
    return &opts_.label_frontiers->by_label[label];
  }

  void release_frontier(int node) noexcept {
    std::vector<VertexId>().swap(frontiers_[static_cast<std::size_t>(node)]);
  }

  // ---- out-of-core paging (run/spill.hpp) -------------------------------

  [[nodiscard]] bool spill_enabled() const noexcept {
    return !opts_.spill_dir.empty() && opts_.spill_budget_bytes > 0;
  }

  [[nodiscard]] std::string spill_path(int node) const {
    std::string path = opts_.spill_dir;
    if (!path.empty() && path.back() != '/') path += '/';
    path += "fascia_spill_e" + std::to_string(spill_tag_) + "_n" +
            std::to_string(node) + ".tbl";
    return path;
  }

  /// Restores a paged-out node's table; no-op when resident (or when
  /// paging is off — spilled_to_ is then empty).  The page file is
  /// consumed; a later eviction rewrites it.  The frontier was never
  /// released, so the restored node is indistinguishable from one that
  /// stayed resident.
  void ensure_resident(int node) {
    const auto idx = static_cast<std::size_t>(node);
    if (idx >= spilled_to_.size() || spilled_to_[idx].empty()) return;
    FASCIA_TRACE("dp.page_in", node);
    tables_[idx] = run::restore_table<Table>(spilled_to_[idx],
                                             graph_.num_vertices(), nullptr);
    std::remove(spilled_to_[idx].c_str());
    spilled_to_[idx].clear();
    node_bytes_[idx] = tables_[idx]->bytes();
    resident_bytes_ += node_bytes_[idx];
  }

  /// Frees a node's table wherever it lives — resident memory or a
  /// spill page — and its frontier.  The one release path, so byte
  /// accounting and page files can never leak apart.
  void free_node(int node) noexcept {
    const auto idx = static_cast<std::size_t>(node);
    if (idx < spilled_to_.size() && !spilled_to_[idx].empty()) {
      std::remove(spilled_to_[idx].c_str());
      spilled_to_[idx].clear();
    }
    if (idx < node_bytes_.size()) {
      resident_bytes_ -= node_bytes_[idx];
      node_bytes_[idx] = 0;
    }
    tables_[idx].reset();
    release_frontier(node);
  }

  /// First stage after `current` that reads `node`'s table;
  /// num_nodes when none does (the ideal eviction victim).
  [[nodiscard]] int next_use(int node, int current) const noexcept {
    for (const int c : consumers_[static_cast<std::size_t>(node)]) {
      if (c > current) return c;
    }
    return partition_.num_nodes();
  }

  /// Belady eviction after stage `current`: page out the resident
  /// table with the farthest next consuming stage until the resident
  /// set fits the budget (or nothing is left to evict — the active
  /// triple alone may exceed the budget, which the planner's
  /// working-set estimate already surfaced).
  void evict_over_budget(int current) {
    while (resident_bytes_ > opts_.spill_budget_bytes) {
      int victim = -1;
      int victim_use = -1;
      for (int j = 0; j <= current; ++j) {
        if (tables_[static_cast<std::size_t>(j)] == nullptr) continue;
        const int use = next_use(j, current);
        if (use > victim_use) {
          victim_use = use;
          victim = j;
        }
      }
      if (victim < 0) break;
      page_out(victim);
    }
  }

  void page_out(int node) {
    const auto idx = static_cast<std::size_t>(node);
    FASCIA_TRACE("dp.page_out", node);
    std::string path = spill_path(node);
    const std::size_t written = run::spill_table(
        path, *tables_[idx], frontiers_[idx], graph_.num_vertices());
    spilled_to_[idx] = std::move(path);
    spilled_bytes_ += written;
    ++spill_events_;
    resident_bytes_ -= node_bytes_[idx];
    node_bytes_[idx] = 0;
    tables_[idx].reset();  // frontier stays — restores reuse it
    if (obs::enabled()) detail::record_spilled_bytes(written);
  }

  /// Threads the inner-parallel sweep will use (and therefore the
  /// first-touch zeroing partition that must match it).
  [[nodiscard]] int effective_inner_threads() const noexcept {
#ifdef _OPENMP
    return opts_.inner_threads > 0 ? opts_.inner_threads
                                   : omp_get_max_threads();
#else
    return 1;
#endif
  }

  void compute_node(int index, const ColorArray& colors, bool parallel) {
    const Subtemplate& node = partition_.node(index);
    const int h = node.size();
    const auto num_sets = num_colorsets(k_, h);
    // First-touch: zero the table with the same thread partition the
    // parallel sweep below uses (count_table.hpp TableInit).
    const TableInit init{parallel ? effective_inner_threads() : 1};
    auto table = std::make_unique<Table>(graph_.num_vertices(), num_sets, init);

    const Subtemplate& active = partition_.node(node.active);
    const Subtemplate& passive = partition_.node(node.passive);
    const int a = active.size();
    const int p = passive.size();

    DpStageStats stat;
    stat.node = index;
    stat.parent_size = h;
    stat.active_size = a;
    stat.kernel = h == 2 ? 'P' : a == 1 ? 'A' : p == 1 ? 'S' : 'G';
    // SpMM family (DESIGN.md §13): only the two table-reading stage
    // shapes have an SpMM form — pair and single-passive stages are
    // already leaf-diagonal scalings and are shared between families.
    // Each eligible stage is cost-gated individually; an unprofitable
    // export falls back to the frontier kernel (bit-identical).
    const bool spmm_on = opts_.spmm_kernels && !opts_.reference_kernels;
    if (spmm_on && stat.kernel == 'A' &&
        spmm_profitable_single_active(index, node)) {
      stat.kernel = 'a';
    } else if (spmm_on && stat.kernel == 'G' &&
               spmm_profitable_general(node)) {
      stat.kernel = 'g';
    }
    const bool obs_on = obs::enabled();
    WallClock clock(opts_.collect_stats || obs_on);
    // Span detail carries what the fixed args cannot: the table layout
    // and the stage shape.  Built only when tracing is live.
    char span_detail[obs::TraceEvent::kDetailCapacity];
    span_detail[0] = '\0';
    if (obs_on) {
      std::snprintf(span_detail, sizeof(span_detail), "%s %s h=%d a=%d t=%d",
                    dp_kernel_name(stat.kernel), Table::kName, h, a,
                    parallel ? effective_inner_threads() : 1);
    }
    FASCIA_TRACE("dp.stage", index, static_cast<unsigned char>(stat.kernel),
                 span_detail);

    std::vector<VertexId>& frontier_out =
        frontiers_[static_cast<std::size_t>(index)];
    frontier_out.clear();
    std::vector<VertexId>* frontier_sink =
        opts_.reference_kernels ? nullptr : &frontier_out;

    if (h == 2) {
      if (opts_.reference_kernels) {
        kernel_pair_reference(*table, node, colors, parallel);
      } else {
        kernel_pair(*table, node, colors, parallel, frontier_sink, stat);
      }
    } else if (a == 1) {
      if (opts_.reference_kernels) {
        kernel_single_active_reference(*table, node, colors, parallel);
      } else if (stat.kernel == 'a') {
        kernel_single_active_spmm(*table, index, node, colors, parallel,
                                  frontier_sink, stat);
      } else {
        kernel_single_active(*table, index, node, colors, parallel,
                             frontier_sink, stat);
      }
    } else if (p == 1) {
      if (opts_.reference_kernels) {
        kernel_single_passive_reference(*table, node, colors, parallel);
      } else {
        kernel_single_passive(*table, index, node, colors, parallel,
                              frontier_sink, stat);
      }
    } else {
      if (opts_.reference_kernels) {
        kernel_general_reference(*table, node, colors, parallel);
      } else if (stat.kernel == 'g') {
        kernel_general_spmm(*table, index, node, colors, parallel,
                            frontier_sink, stat);
      } else {
        kernel_general(*table, index, node, colors, parallel, frontier_sink,
                       stat);
      }
    }
    // MemTracker::current() is an O(1) atomic read covering every live
    // table; Table::bytes() can be an O(n) row scan (compact), far too
    // slow to pay per stage just for a metric sample.
    const std::size_t table_bytes = obs_on ? MemTracker::current() : 0;
    tables_[static_cast<std::size_t>(index)] = std::move(table);
    if (opts_.reference_kernels) {
      stat.candidates = static_cast<std::uint64_t>(graph_.num_vertices());
    }
    stat.survivors = static_cast<std::uint64_t>(frontier_out.size());
    if (obs_on) {
      detail::record_stage_metrics(stat.kernel, clock.elapsed_s(),
                                   stat.survivors, graph_.num_vertices(),
                                   table_bytes);
    }
    if (opts_.collect_stats) {
      stat.seconds = clock.elapsed_s();
      stats_.push_back(stat);
    }
  }

  // ---- shared kernel plumbing -------------------------------------------

  /// Minimal timer that only reads the clock when enabled (the stats
  /// path); avoids pulling util/timer.hpp into this header's hot path.
  class WallClock {
   public:
    explicit WallClock(bool enabled) {
      if (enabled) start_ = now();
    }
    [[nodiscard]] double elapsed_s() const { return now() - start_; }

   private:
    static double now() {
#ifdef _OPENMP
      return omp_get_wtime();
#else
      return static_cast<double>(std::chrono::duration_cast<
                                     std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now()
                                         .time_since_epoch())
                                     .count()) *
             1e-9;
#endif
    }
    double start_ = 0.0;
  };

  /// Per-thread scratch for one kernel pass.
  struct Workspace {
    std::vector<double> row;   ///< count per parent colorset, for one v
    std::vector<double> psum;  ///< passive-row accumulator / color counts
    std::vector<double> gather;  ///< row materialized via get() (hash)
    /// Hoisted nonzero active-row colorset indices (general kernel).
    std::vector<ColorsetIndex> nz_active;
    std::vector<VertexId> survivors;  ///< vertices that committed a row
    std::uint64_t macs = 0;           ///< multiply-accumulate tally
  };

  /// Candidate set of one kernel pass: an explicit frontier, or all n
  /// vertices when null.
  struct FrontierView {
    const std::vector<VertexId>* list;
    VertexId n;
    [[nodiscard]] std::size_t size() const noexcept {
      return list != nullptr ? list->size() : static_cast<std::size_t>(n);
    }
    [[nodiscard]] VertexId operator[](std::size_t i) const noexcept {
      return list != nullptr ? (*list)[i] : static_cast<VertexId>(i);
    }
  };

  /// Software-prefetch distances for neighbor-row gathers.  The slot
  /// (per-vertex indirection cell) is hinted far ahead — it must be
  /// resident before the row hint can chase the pointer it holds — and
  /// the row data close ahead, matching the per-neighbor work of one
  /// row's multiply-accumulate.
  static constexpr std::size_t kPrefetchSlotAhead = 8;
  static constexpr std::size_t kPrefetchRowAhead = 2;

  /// Dynamic-scheduling grain derived from the candidate count: aim
  /// for ~8 chunks per thread so a small frontier is not serialized
  /// behind per-chunk scheduling overhead, capped at the legacy 64.
  [[nodiscard]] static int dynamic_chunk(std::size_t count,
                                         int threads) noexcept {
    const std::size_t per =
        count / (static_cast<std::size_t>(threads) * 8 + 1);
    return static_cast<int>(std::clamp<std::size_t>(per, 1, 64));
  }

  /// Runs `body(v, ws)` over the candidate set (optionally
  /// OpenMP-parallel); a body returning true means "committed a row",
  /// and those vertices become the node's frontier (sorted ascending —
  /// commit-layer filtering keeps zero rows out of the tables, so a
  /// frontier vertex without a stored row is read as zeros
  /// downstream).  Workspace buffers are sized once per thread.
  template <class Body>
  void for_frontier(bool parallel, const FrontierView& front,
                    std::uint32_t row_width, std::uint32_t psum_width,
                    std::size_t active_bound,
                    std::vector<VertexId>* frontier_out, DpStageStats& stat,
                    Body&& body) {
    const std::size_t count = front.size();
    stat.candidates = count;
    const auto prepare = [&](Workspace& ws) {
      ws.row.resize(row_width);
      ws.psum.resize(psum_width);
      if (active_bound > 0) ws.nz_active.reserve(active_bound);
      ws.survivors.clear();
      ws.macs = 0;
    };
#ifdef _OPENMP
    if (parallel && count > 0) {
      const int threads = effective_inner_threads();
      const int chunk = dynamic_chunk(count, threads);
      // Workspaces persist across stage passes and iterations: the
      // row/psum/nz buffers keep their capacity, so the steady state
      // allocates nothing per stage.
      if (workspaces_.size() < static_cast<std::size_t>(threads)) {
        workspaces_.resize(static_cast<std::size_t>(threads));
      }
      const bool guided = opts_.guided_schedule;
#pragma omp parallel num_threads(threads)
      {
        Workspace& ws =
            workspaces_[static_cast<std::size_t>(omp_get_thread_num())];
        prepare(ws);
        if (guided) {
          // Back-to-front guided sweep (see DpEngineOptions
          // ::guided_schedule): cheap tail first in big chunks, hub
          // block last in small ones.
#pragma omp for schedule(guided, chunk)
          for (std::size_t i = 0; i < count; ++i) {
            const VertexId v = front[count - 1 - i];
            if (body(v, ws)) ws.survivors.push_back(v);
          }
        } else {
#pragma omp for schedule(dynamic, chunk)
          for (std::size_t i = 0; i < count; ++i) {
            const VertexId v = front[i];
            if (body(v, ws)) ws.survivors.push_back(v);
          }
        }
#pragma omp critical(fascia_frontier_merge)
        {
          if (frontier_out != nullptr) {
            frontier_out->insert(frontier_out->end(), ws.survivors.begin(),
                                 ws.survivors.end());
          }
          stat.macs += ws.macs;
        }
      }
      if (frontier_out != nullptr) {
        std::sort(frontier_out->begin(), frontier_out->end());
      }
      return;
    }
#endif
    if (workspaces_.empty()) workspaces_.resize(1);
    Workspace& ws = workspaces_.front();
    prepare(ws);
    for (std::size_t i = 0; i < count; ++i) {
      const VertexId v = front[i];
      if (body(v, ws)) ws.survivors.push_back(v);
    }
    if (frontier_out != nullptr) *frontier_out = ws.survivors;
    stat.macs += ws.macs;
  }

  // ---- vectorized kernels (the default path) ----------------------------
  // Each iterates the stage's frontier, fills a thread-private row of
  // C(k,h) counts for vertex v over borrowed contiguous child rows,
  // and commits it when nonzero.  All accumulations reassociate sums
  // of exact integer counts, so results match the reference kernels
  // bit for bit (header comment).

  void kernel_pair(Table& out, const Subtemplate& node,
                   const ColorArray& colors, bool parallel,
                   std::vector<VertexId>* frontier_out, DpStageStats& stat) {
    const Subtemplate& active = partition_.node(node.active);
    const Subtemplate& passive = partition_.node(node.passive);
    const std::vector<VertexId>* candidates =
        delta_restrict_ != nullptr ? delta_restrict_ : leaf_frontier(active);
    const bool check_active =
        delta_restrict_ != nullptr || candidates == nullptr;
    for_frontier(
        parallel, {candidates, graph_.num_vertices()}, out.num_colorsets(),
        static_cast<std::uint32_t>(k_), 0, frontier_out, stat,
        [&](VertexId v, Workspace& ws) {
          if (check_active && !leaf_matches(active, v)) return false;
          const int cv = colors[static_cast<std::size_t>(v)];
          // Fold the neighbor walk into per-color counts first: the
          // row scatter then costs k adds instead of deg(v).
          auto& cnt = ws.psum;
          std::fill(cnt.begin(), cnt.end(), 0.0);
          for (VertexId u : graph_.neighbors(v)) {
            if (!leaf_matches(passive, u)) continue;
            cnt[colors[static_cast<std::size_t>(u)]] += 1.0;
          }
          auto& row = ws.row;
          std::fill(row.begin(), row.end(), 0.0);
          bool any = false;
          for (int c = 0; c < k_; ++c) {
            if (c == cv || cnt[static_cast<std::size_t>(c)] == 0.0) continue;
            row[pair_index_[static_cast<std::size_t>(cv) * k_ + c]] +=
                cnt[static_cast<std::size_t>(c)];
            any = true;
          }
          if (!any) return false;
          out.commit_row(v, row);
          ws.macs += graph_.neighbors(v).size() + static_cast<std::size_t>(k_);
          return true;
        });
  }

  void kernel_single_active(Table& out, int index, const Subtemplate& node,
                            const ColorArray& colors, bool parallel,
                            std::vector<VertexId>* frontier_out,
                            DpStageStats& stat) {
    const Subtemplate& active = partition_.node(node.active);
    const Table& tp = *tables_[static_cast<std::size_t>(node.passive)];
    const SingleActiveSplit& split =
        *node_single_[static_cast<std::size_t>(index)];
    const std::vector<VertexId>* candidates =
        delta_restrict_ != nullptr ? delta_restrict_ : leaf_frontier(active);
    const bool check_active =
        delta_restrict_ != nullptr || candidates == nullptr;
    for_frontier(
        parallel, {candidates, graph_.num_vertices()}, out.num_colorsets(),
        0, 0, frontier_out, stat, [&](VertexId v, Workspace& ws) {
          if (check_active && !leaf_matches(active, v)) return false;
          const int cv = colors[static_cast<std::size_t>(v)];
          const auto passives = split.passives(cv);
          const auto parents = split.parents(cv);
          const std::size_t m = passives.size();
          const ColorsetIndex* pas = passives.data();
          const ColorsetIndex* par = parents.data();
          auto& row = ws.row;
          std::fill(row.begin(), row.end(), 0.0);
          double* r = row.data();
          std::size_t nu = 0;
          const auto neighbors = graph_.neighbors(v);
          const VertexId* nbr = neighbors.data();
          const std::size_t deg = neighbors.size();
          if constexpr (!Table::kContiguousRows &&
                        DecodableRowTable<Table>) {
            ws.psum.resize(tp.num_colorsets());
            std::fill(ws.psum.begin(), ws.psum.end(), 0.0);
          }
          for (std::size_t j = 0; j < deg; ++j) {
            if constexpr (Table::kContiguousRows) {
              if (j + kPrefetchSlotAhead < deg) {
                tp.prefetch_slot(nbr[j + kPrefetchSlotAhead]);
              }
              if (j + kPrefetchRowAhead < deg) {
                tp.prefetch_row(nbr[j + kPrefetchRowAhead]);
              }
            }
            const VertexId u = nbr[j];
            if constexpr (Table::kContiguousRows) {
              const double* prow = tp.row_ptr(u);
              if (prow == nullptr) continue;
              ++nu;
              // Parents within one color are all distinct, so the
              // scatter has no intra-loop conflicts; the passive reads
              // are a monotone gather over one contiguous row.
#ifdef _OPENMP
#pragma omp simd
#endif
              for (std::size_t s = 0; s < m; ++s) {
                r[par[s]] += prow[pas[s]];
              }
            } else if constexpr (DecodableRowTable<Table>) {
              if (!tp.has_vertex(u)) continue;
              ++nu;
              // Fold the neighbor rows first — O(nnz) adds into a
              // dense partial-sum row — and apply the split list once
              // per vertex after the loop, not once per neighbor.
              tp.add_row_into(u, ws.psum.data());
            } else {
              if (!tp.has_vertex(u)) continue;
              ++nu;
              for (std::size_t s = 0; s < m; ++s) {
                r[par[s]] += tp.get(u, pas[s]);
              }
            }
          }
          if (nu == 0) return false;
          if constexpr (!Table::kContiguousRows &&
                        DecodableRowTable<Table>) {
            const double* ps = ws.psum.data();
#ifdef _OPENMP
#pragma omp simd
#endif
            for (std::size_t s = 0; s < m; ++s) {
              r[par[s]] += ps[pas[s]];
            }
          }
          out.commit_row(v, row);
          ws.macs += nu * m;
          return true;
        });
  }

  void kernel_single_passive(Table& out, int index, const Subtemplate& node,
                             const ColorArray& colors, bool parallel,
                             std::vector<VertexId>* frontier_out,
                             DpStageStats& stat) {
    const Subtemplate& passive = partition_.node(node.passive);
    const Table& ta = *tables_[static_cast<std::size_t>(node.active)];
    const SingleActiveSplit& split =
        *node_single_[static_cast<std::size_t>(index)];
    const std::vector<VertexId>& active_frontier =
        delta_restrict_ != nullptr
            ? *delta_restrict_
            : frontiers_[static_cast<std::size_t>(node.active)];
    for_frontier(
        parallel, {&active_frontier, graph_.num_vertices()},
        out.num_colorsets(), static_cast<std::uint32_t>(k_), 0, frontier_out,
        stat, [&](VertexId v, Workspace& ws) {
          if constexpr (!Table::kContiguousRows) {
            // The frontier can carry vertices whose committed row was
            // all zero (commit-layer filtering stores nothing): drop
            // them here, mirroring the contiguous path's null
            // row_ptr check below — otherwise they do a full split
            // pass over zeros and survive every later stage.
            if (!ta.has_vertex(v)) return false;
          }
          // Matching neighbors only contribute through their color, so
          // count them per color and apply each color's split list
          // once, scaled — deg(v)·C(k-1,h-1) adds become
          // deg(v) + k·C(k-1,h-1).
          auto& cnt = ws.psum;
          std::fill(cnt.begin(), cnt.end(), 0.0);
          std::size_t nu = 0;
          for (VertexId u : graph_.neighbors(v)) {
            if (!leaf_matches(passive, u)) continue;
            cnt[colors[static_cast<std::size_t>(u)]] += 1.0;
            ++nu;
          }
          if (nu == 0) return false;
          auto& row = ws.row;
          std::fill(row.begin(), row.end(), 0.0);
          double* r = row.data();
          const double* arow = nullptr;
          if constexpr (Table::kContiguousRows) {
            arow = ta.row_ptr(v);
            if (arow == nullptr) return false;  // frontier guarantees rows
          } else if constexpr (DecodableRowTable<Table>) {
            // v's row feeds every color's split list: reconstruct it
            // once, then run the contiguous gather below.
            ws.gather.resize(ta.num_colorsets());
            ta.decode_row(v, ws.gather.data());
            arow = ws.gather.data();
          }
          for (int c = 0; c < k_; ++c) {
            const double scale = cnt[static_cast<std::size_t>(c)];
            if (scale == 0.0) continue;
            const auto passives = split.passives(c);
            const auto parents = split.parents(c);
            const std::size_t m = passives.size();
            const ColorsetIndex* pas = passives.data();
            const ColorsetIndex* par = parents.data();
            if constexpr (Table::kContiguousRows ||
                          DecodableRowTable<Table>) {
              // entry.passive indexes the parent set minus the
              // neighbor's color — exactly the active child's colorset.
#ifdef _OPENMP
#pragma omp simd
#endif
              for (std::size_t s = 0; s < m; ++s) {
                r[par[s]] += scale * arow[pas[s]];
              }
            } else {
              for (std::size_t s = 0; s < m; ++s) {
                r[par[s]] += scale * ta.get(v, pas[s]);
              }
            }
            ws.macs += m;
          }
          out.commit_row(v, row);
          ws.macs += graph_.neighbors(v).size();
          return true;
        });
  }

  void kernel_general(Table& out, int index, const Subtemplate& node,
                      const ColorArray& colors, bool parallel,
                      std::vector<VertexId>* frontier_out,
                      DpStageStats& stat) {
    (void)colors;  // colors only matter at the leaves
    const Table& ta = *tables_[static_cast<std::size_t>(node.active)];
    const Table& tp = *tables_[static_cast<std::size_t>(node.passive)];
    const SplitTable& split =
        *node_general_[static_cast<std::size_t>(index)];
    const std::vector<VertexId>& active_frontier =
        delta_restrict_ != nullptr
            ? *delta_restrict_
            : frontiers_[static_cast<std::size_t>(node.active)];
    const std::uint32_t num_actives = split.num_actives();
    const std::uint32_t per_active = split.per_active();
    const std::uint32_t passive_width = tp.num_colorsets();
    const std::uint32_t num_parents = out.num_colorsets();
    const std::uint32_t per_parent = split.splits_per_parent();
    const ColorsetIndex* all_act = split.all_actives().data();
    const ColorsetIndex* all_pas = split.all_passives().data();
    const std::size_t flat_size = split.flat_size();
    const std::size_t active_bound =
        node_active_bound_[static_cast<std::size_t>(index)];
    for_frontier(
        parallel, {&active_frontier, graph_.num_vertices()},
        num_parents, passive_width, active_bound, frontier_out, stat,
        [&](VertexId v, Workspace& ws) {
          // The active side depends only on v: hoist the nonzero
          // colorsets of v's borrowed active row by scanning its
          // C(k,a) entries (vs the C(k,h)·C(h,a) split slots the
          // reference kernel probes).  Each survivor A owns a
          // fixed-width (parent, passive) span in the active-grouped
          // split arrays: passives ascend (monotone gather) and
          // parents are distinct (conflict-free scatter).
          const double* arow;
          if constexpr (Table::kContiguousRows) {
            arow = ta.row_ptr(v);
            if (arow == nullptr) return false;  // frontier guarantees rows
          } else {
            // Zero-row frontier carry-overs (see kernel_single_passive)
            // decode to all zeros: drop them before paying the gather.
            if (!ta.has_vertex(v)) return false;
            ws.gather.resize(num_actives);
            if constexpr (DecodableRowTable<Table>) {
              ta.decode_row(v, ws.gather.data());
            } else {
              for (std::uint32_t idx = 0; idx < num_actives; ++idx) {
                ws.gather[idx] = ta.get(v, idx);
              }
            }
            arow = ws.gather.data();
          }
          auto& nz = ws.nz_active;
          nz.clear();
          for (std::uint32_t idx = 0; idx < num_actives; ++idx) {
            if (arow[idx] != 0.0) nz.push_back(idx);
          }
          if (nz.empty()) return false;
          const std::size_t num_entries = nz.size() * per_active;

          auto& row = ws.row;
          std::fill(row.begin(), row.end(), 0.0);
          double* r = row.data();
          const auto neighbors = graph_.neighbors(v);
          std::size_t nu = 0;
          // The hoisted active values are neighbor-independent, so
          // when the per-neighbor entry work outweighs one passive
          // row, fold the neighbor rows into one partial-sum row
          // first (contiguous simd adds for borrowed rows, one gather
          // per colorset for hash tables), then apply the split once
          // per vertex as a parent-major dot-product sweep:
          // sequential index reads, no scatter, no branches.  Zero
          // active values contribute exact zero terms (the DP values
          // are integers in doubles), so the sweep needs no filtering
          // and the committed sums are unchanged.  For borrowed rows
          // the crossover weighs the direct path's scattered
          // multiply-accumulates (~3x a contiguous add) against the
          // fold adds plus the full sweep; hash rows pay a hashed
          // probe per folded slot, so they fold only when that is
          // strictly fewer probes than the direct path issues.
          const std::size_t deg = neighbors.size();
          bool fold_neighbors;
          if constexpr (Table::kContiguousRows || DecodableRowTable<Table>) {
            // Decodable rows fold at contiguous cost: add_row_into
            // touches only the stored nonzeros.
            fold_neighbors = deg >= 2 && 3 * deg * num_entries >=
                                             deg * passive_width +
                                                 2 * flat_size;
          } else {
            fold_neighbors = deg >= 2 && num_entries >= passive_width;
          }
          const VertexId* nbr = neighbors.data();
          if (fold_neighbors) {
            auto& psum = ws.psum;
            std::fill(psum.begin(), psum.end(), 0.0);
            double* ps = psum.data();
            for (std::size_t j = 0; j < deg; ++j) {
              if constexpr (Table::kContiguousRows) {
                if (j + kPrefetchSlotAhead < deg) {
                  tp.prefetch_slot(nbr[j + kPrefetchSlotAhead]);
                }
                if (j + kPrefetchRowAhead < deg) {
                  tp.prefetch_row(nbr[j + kPrefetchRowAhead]);
                }
              }
              const VertexId u = nbr[j];
              if constexpr (Table::kContiguousRows) {
                const double* prow = tp.row_ptr(u);
                if (prow == nullptr) continue;
                ++nu;
#ifdef _OPENMP
#pragma omp simd
#endif
                for (std::uint32_t c = 0; c < passive_width; ++c) {
                  ps[c] += prow[c];
                }
              } else {
                if (!tp.has_vertex(u)) continue;
                ++nu;
                if constexpr (DecodableRowTable<Table>) {
                  tp.add_row_into(u, ps);
                } else {
                  for (std::uint32_t c = 0; c < passive_width; ++c) {
                    ps[c] += tp.get(u, c);
                  }
                }
              }
            }
            if (nu == 0) return false;
            const ColorsetIndex* act = all_act;
            const ColorsetIndex* pas = all_pas;
            for (std::uint32_t parent = 0; parent < num_parents;
                 ++parent, act += per_parent, pas += per_parent) {
              double acc = 0.0;
#ifdef _OPENMP
#pragma omp simd reduction(+ : acc)
#endif
              for (std::uint32_t s = 0; s < per_parent; ++s) {
                acc += arow[act[s]] * ps[pas[s]];
              }
              r[parent] = acc;
            }
            ws.macs += nu * passive_width + flat_size;
          } else {
            const ColorsetIndex* grp_par = split.group_parents(0).data();
            const ColorsetIndex* grp_pas = split.group_passives(0).data();
            for (std::size_t j = 0; j < deg; ++j) {
              if constexpr (Table::kContiguousRows) {
                if (j + kPrefetchSlotAhead < deg) {
                  tp.prefetch_slot(nbr[j + kPrefetchSlotAhead]);
                }
                if (j + kPrefetchRowAhead < deg) {
                  tp.prefetch_row(nbr[j + kPrefetchRowAhead]);
                }
              }
              const VertexId u = nbr[j];
              const double* prow = nullptr;
              if constexpr (Table::kContiguousRows) {
                prow = tp.row_ptr(u);
                if (prow == nullptr) continue;
              } else if constexpr (DecodableRowTable<Table>) {
                if (!tp.has_vertex(u)) continue;
                // One O(nnz) reconstruction into the (otherwise idle)
                // psum scratch buys the contiguous gather below —
                // cheaper than a packed probe per split entry.
                tp.decode_row(u, ws.psum.data());
                prow = ws.psum.data();
              } else {
                if (!tp.has_vertex(u)) continue;
              }
              ++nu;
              for (const ColorsetIndex a_idx : nz) {
                const double ca = arow[a_idx];
                const std::size_t base =
                    static_cast<std::size_t>(a_idx) * per_active;
                const ColorsetIndex* gp = grp_par + base;
                const ColorsetIndex* gpas = grp_pas + base;
                if constexpr (Table::kContiguousRows ||
                              DecodableRowTable<Table>) {
#ifdef _OPENMP
#pragma omp simd
#endif
                  for (std::uint32_t s = 0; s < per_active; ++s) {
                    r[gp[s]] += ca * prow[gpas[s]];
                  }
                } else {
                  for (std::uint32_t s = 0; s < per_active; ++s) {
                    r[gp[s]] += ca * tp.get(u, gpas[s]);
                  }
                }
              }
            }
            ws.macs += nu * num_entries;
          }
          if (nu == 0) return false;
          out.commit_row(v, row);
          return true;
        });
  }

  // ---- SpMM kernel family (core/spmm_kernels.hpp, DESIGN.md §13) --------
  // The stage gather recast as a masked CSR SpMM: the passive child's
  // table is exported once per stage as a column-blocked dense
  // multivector over its frontier, the per-vertex neighbor fold
  // becomes branchless blocked dense adds through the vertex → row
  // remap (absent rows hit a shared zero row), and the product folds
  // back through the same split tables.  Per-column accumulation runs
  // in neighbor order and zero rows add exact zeros, so committed
  // values match the frontier kernels bit for bit.

  /// Total degree over a candidate list (nullptr = all vertices).
  [[nodiscard]] std::size_t frontier_degree_sum(
      const std::vector<VertexId>* list) const noexcept {
    if (list == nullptr) {
      return 2 * static_cast<std::size_t>(graph_.num_edges());
    }
    std::size_t sum = 0;
    for (const VertexId v : *list) sum += graph_.neighbors(v).size();
    return sum;
  }

  // Per-layout profitability model (bench/micro_dp measures it): the
  // export costs ~fp x width row reads, the savings are whatever the
  // frontier kernel pays per EDGE that the dense slab adds do not.
  //   hash      — per-edge keyed probes per colorset; export amortizes
  //               whenever neighbors outnumber frontier rows.
  //   naive     — per-edge row gathers stride the full n-row table;
  //               L2-resident slabs win across the board.
  //   compact   — per-edge row borrow is already one contiguous read,
  //               so only the slab-blocking win remains; it shrinks
  //               with width while the export grows with it.
  //   succinct  — the a == 1 kernel folds via add_row_into (one
  //               decode-and-add sweep per edge, no cheaper read
  //               exists), and the general kernel's per-edge decode
  //               only loses to the export at small widths.

  /// Cost gate for the a == 1 SpMM form.  Compact and succinct never
  /// take it: their per-edge accumulate is a single contiguous sweep
  /// already, so the export is pure overhead.
  [[nodiscard]] bool spmm_profitable_single_active(
      int /*index*/, const Subtemplate& node) const noexcept {
    const auto& passive_frontier =
        frontiers_[static_cast<std::size_t>(node.passive)];
    const std::size_t fp = passive_frontier.size();
    if (fp == 0) return false;
    // Delta passes sweep only the dirty candidates: price the export
    // against that restricted edge work, not the full frontier's.
    const std::size_t deg_sum = frontier_degree_sum(
        delta_restrict_ != nullptr
            ? delta_restrict_
            : leaf_frontier(partition_.node(node.active)));
    if constexpr (Table::kDenseRows) {
      return deg_sum >= 2 * fp;  // naive
    } else if constexpr (Table::kContiguousRows ||
                         DecodableRowTable<Table>) {
      return false;  // compact / succinct
    } else {
      return deg_sum >= 2 * fp;  // hash
    }
  }

  /// Cost gate for the general SpMM form: the fold-side FLOPs are the
  /// same either way, so the export must amortize against the per-edge
  /// read cost — probe sweeps (hash), scattered full-table gathers
  /// (naive), or, for compact/succinct, only while the passive width
  /// keeps the export volume below the edge work.
  [[nodiscard]] bool spmm_profitable_general(
      const Subtemplate& node) const noexcept {
    const auto& passive_frontier =
        frontiers_[static_cast<std::size_t>(node.passive)];
    const auto& active_frontier =
        delta_restrict_ != nullptr
            ? *delta_restrict_
            : frontiers_[static_cast<std::size_t>(node.active)];
    const std::size_t fp = passive_frontier.size();
    if (fp == 0 || active_frontier.empty()) return false;
    const std::size_t deg_sum = frontier_degree_sum(&active_frontier);
    const std::size_t width =
        tables_[static_cast<std::size_t>(node.passive)]->num_colorsets();
    if constexpr (Table::kDenseRows) {
      return deg_sum >= 2 * fp;  // naive
    } else if constexpr (Table::kContiguousRows ||
                         DecodableRowTable<Table>) {
      return deg_sum >= fp * width;  // compact / succinct
    } else {
      return deg_sum >= 2 * fp;  // hash
    }
  }

  void kernel_single_active_spmm(Table& out, int index,
                                 const Subtemplate& node,
                                 const ColorArray& colors, bool parallel,
                                 std::vector<VertexId>* frontier_out,
                                 DpStageStats& stat) {
    const Subtemplate& active = partition_.node(node.active);
    const Table& tp = *tables_[static_cast<std::size_t>(node.passive)];
    const SingleActiveSplit& split =
        *node_single_[static_cast<std::size_t>(index)];
    const std::vector<VertexId>* candidates =
        delta_restrict_ != nullptr ? delta_restrict_ : leaf_frontier(active);
    const bool check_active =
        delta_restrict_ != nullptr || candidates == nullptr;
    spmm_.build(tp, frontiers_[static_cast<std::size_t>(node.passive)],
                graph_.num_vertices(), parallel, effective_inner_threads());
    spmm_peak_bytes_ = std::max(spmm_peak_bytes_, spmm_.bytes());
    const std::uint32_t width = tp.num_colorsets();
    for_frontier(
        parallel, {candidates, graph_.num_vertices()}, out.num_colorsets(),
        width, 0, frontier_out, stat, [&](VertexId v, Workspace& ws) {
          if (check_active && !leaf_matches(active, v)) return false;
          const int cv = colors[static_cast<std::size_t>(v)];
          const auto passives = split.passives(cv);
          const auto parents = split.parents(cv);
          const std::size_t m = passives.size();
          const auto neighbors = graph_.neighbors(v);
          auto& psum = ws.psum;
          std::fill(psum.begin(), psum.end(), 0.0);
          const std::size_t nu = spmm_.template accumulate<Table::kDenseRows>(
              neighbors.data(), neighbors.size(), psum.data());
          if (nu == 0) return false;
          auto& row = ws.row;
          std::fill(row.begin(), row.end(), 0.0);
          double* r = row.data();
          const double* ps = psum.data();
          const ColorsetIndex* pas = passives.data();
          const ColorsetIndex* par = parents.data();
#ifdef _OPENMP
#pragma omp simd
#endif
          for (std::size_t s = 0; s < m; ++s) {
            r[par[s]] += ps[pas[s]];
          }
          out.commit_row(v, row);
          ws.macs += neighbors.size() * width + m;
          return true;
        });
  }

  void kernel_general_spmm(Table& out, int index, const Subtemplate& node,
                           const ColorArray& colors, bool parallel,
                           std::vector<VertexId>* frontier_out,
                           DpStageStats& stat) {
    (void)colors;  // colors only matter at the leaves
    const Table& ta = *tables_[static_cast<std::size_t>(node.active)];
    const Table& tp = *tables_[static_cast<std::size_t>(node.passive)];
    const SplitTable& split =
        *node_general_[static_cast<std::size_t>(index)];
    const std::vector<VertexId>& active_frontier =
        delta_restrict_ != nullptr
            ? *delta_restrict_
            : frontiers_[static_cast<std::size_t>(node.active)];
    const std::uint32_t num_actives = split.num_actives();
    const std::uint32_t passive_width = tp.num_colorsets();
    const std::uint32_t num_parents = out.num_colorsets();
    const std::uint32_t per_parent = split.splits_per_parent();
    const ColorsetIndex* all_act = split.all_actives().data();
    const ColorsetIndex* all_pas = split.all_passives().data();
    const std::size_t flat_size = split.flat_size();
    spmm_.build(tp, frontiers_[static_cast<std::size_t>(node.passive)],
                graph_.num_vertices(), parallel, effective_inner_threads());
    spmm_peak_bytes_ = std::max(spmm_peak_bytes_, spmm_.bytes());
    for_frontier(
        parallel, {&active_frontier, graph_.num_vertices()}, num_parents,
        passive_width, 0, frontier_out, stat,
        [&](VertexId v, Workspace& ws) {
          const double* arow;
          if constexpr (Table::kContiguousRows) {
            arow = ta.row_ptr(v);
            if (arow == nullptr) return false;  // frontier guarantees rows
          } else {
            if (!ta.has_vertex(v)) return false;
            ws.gather.resize(num_actives);
            if constexpr (DecodableRowTable<Table>) {
              ta.decode_row(v, ws.gather.data());
            } else {
              for (std::uint32_t idx = 0; idx < num_actives; ++idx) {
                ws.gather[idx] = ta.get(v, idx);
              }
            }
            arow = ws.gather.data();
          }
          bool any_active = false;
          for (std::uint32_t idx = 0; idx < num_actives; ++idx) {
            if (arow[idx] != 0.0) {
              any_active = true;
              break;
            }
          }
          if (!any_active) return false;
          const auto neighbors = graph_.neighbors(v);
          auto& psum = ws.psum;
          std::fill(psum.begin(), psum.end(), 0.0);
          const std::size_t nu = spmm_.template accumulate<Table::kDenseRows>(
              neighbors.data(), neighbors.size(), psum.data());
          if (nu == 0) return false;
          auto& row = ws.row;
          std::fill(row.begin(), row.end(), 0.0);
          double* r = row.data();
          const double* ps = psum.data();
          // The fold-back is the frontier fold path's parent-major
          // dot-product sweep, verbatim: zero active values contribute
          // exact zero terms, so no filtering is needed.
          const ColorsetIndex* act = all_act;
          const ColorsetIndex* pas = all_pas;
          for (std::uint32_t parent = 0; parent < num_parents;
               ++parent, act += per_parent, pas += per_parent) {
            double acc = 0.0;
#ifdef _OPENMP
#pragma omp simd reduction(+ : acc)
#endif
            for (std::uint32_t s = 0; s < per_parent; ++s) {
              acc += arow[act[s]] * ps[pas[s]];
            }
            r[parent] = acc;
          }
          out.commit_row(v, row);
          ws.macs += neighbors.size() * passive_width + flat_size;
          return true;
        });
  }

  // ---- reference kernels (pre-frontier scalar path) ---------------------
  // The seed implementation, kept verbatim behind
  // DpEngineOptions::reference_kernels: full-n scans, per-element
  // table.get() probes, AoS hoisted entries.  The bit-identity tests
  // and bench/micro_dp's before/after numbers run against these.

  struct ReferenceWorkspace {
    std::vector<double> row;
    struct ActiveEntry {
      ColorsetIndex parent;
      ColorsetIndex passive;
      double value;
    };
    std::vector<ActiveEntry> active_entries;
  };

  template <class Body>
  void for_all_vertices_reference(bool parallel, std::uint32_t row_width,
                                  Body&& body) {
    const VertexId n = graph_.num_vertices();
#ifdef _OPENMP
    if (parallel) {
#pragma omp parallel
      {
        ReferenceWorkspace workspace;
        workspace.row.resize(row_width);
#pragma omp for schedule(dynamic, 64)
        for (VertexId v = 0; v < n; ++v) body(v, workspace);
      }
      return;
    }
#endif
    ReferenceWorkspace workspace;
    workspace.row.resize(row_width);
    for (VertexId v = 0; v < n; ++v) body(v, workspace);
  }

  void kernel_pair_reference(Table& out, const Subtemplate& node,
                             const ColorArray& colors, bool parallel) {
    const Subtemplate& active = partition_.node(node.active);
    const Subtemplate& passive = partition_.node(node.passive);
    for_all_vertices_reference(
        parallel, out.num_colorsets(),
        [&](VertexId v, ReferenceWorkspace& ws) {
          if (!leaf_matches(active, v)) return;
          auto& row = ws.row;
          std::fill(row.begin(), row.end(), 0.0);
          const int cv = colors[static_cast<std::size_t>(v)];
          bool any = false;
          for (VertexId u : graph_.neighbors(v)) {
            const int cu = colors[static_cast<std::size_t>(u)];
            if (cu == cv || !leaf_matches(passive, u)) continue;
            row[pair_index_[static_cast<std::size_t>(cv) * k_ + cu]] += 1.0;
            any = true;
          }
          if (any) out.commit_row(v, row);
        });
  }

  void kernel_single_active_reference(Table& out, const Subtemplate& node,
                                      const ColorArray& colors,
                                      bool parallel) {
    const Subtemplate& active = partition_.node(node.active);
    const Table& tp = *tables_[static_cast<std::size_t>(node.passive)];
    const SingleActiveSplit& split =
        *single_splits_[static_cast<std::size_t>(node.size())];
    for_all_vertices_reference(
        parallel, out.num_colorsets(),
        [&](VertexId v, ReferenceWorkspace& ws) {
          if (!leaf_matches(active, v)) return;
          auto& row = ws.row;
          std::fill(row.begin(), row.end(), 0.0);
          const int cv = colors[static_cast<std::size_t>(v)];
          const auto entries = split.entries(cv);
          bool any = false;
          for (VertexId u : graph_.neighbors(v)) {
            if (!tp.has_vertex(u)) continue;
            any = true;
            for (const auto& entry : entries) {
              row[entry.parent] += tp.get(u, entry.passive);
            }
          }
          if (any) out.commit_row(v, row);
        });
  }

  void kernel_single_passive_reference(Table& out, const Subtemplate& node,
                                       const ColorArray& colors,
                                       bool parallel) {
    const Subtemplate& passive = partition_.node(node.passive);
    const Table& ta = *tables_[static_cast<std::size_t>(node.active)];
    const SingleActiveSplit& split =
        *single_splits_[static_cast<std::size_t>(node.size())];
    for_all_vertices_reference(
        parallel, out.num_colorsets(),
        [&](VertexId v, ReferenceWorkspace& ws) {
          if (!ta.has_vertex(v)) return;
          auto& row = ws.row;
          std::fill(row.begin(), row.end(), 0.0);
          bool any = false;
          for (VertexId u : graph_.neighbors(v)) {
            if (!leaf_matches(passive, u)) continue;
            const int cu = colors[static_cast<std::size_t>(u)];
            for (const auto& entry : split.entries(cu)) {
              const double count = ta.get(v, entry.passive);
              if (count != 0.0) {
                row[entry.parent] += count;
                any = true;
              }
            }
          }
          if (any) out.commit_row(v, row);
        });
  }

  void kernel_general_reference(Table& out, const Subtemplate& node,
                                const ColorArray& colors, bool parallel) {
    (void)colors;  // colors only matter at the leaves
    const Table& ta = *tables_[static_cast<std::size_t>(node.active)];
    const Table& tp = *tables_[static_cast<std::size_t>(node.passive)];
    const int h = node.size();
    const int a = partition_.node(node.active).size();
    const SplitTable& split = general_splits_.at(std::make_pair(h, a));
    const auto num_parents = out.num_colorsets();
    for_all_vertices_reference(
        parallel, num_parents,
        [&](VertexId v, ReferenceWorkspace& ws) {
          if (!ta.has_vertex(v)) return;
          // The active side depends only on v: hoist its nonzero
          // (parent, passive, value) triples out of the neighbor loop.
          auto& entries = ws.active_entries;
          entries.clear();
          for (ColorsetIndex parent = 0; parent < num_parents; ++parent) {
            const auto act = split.active_indices(parent);
            const auto pas = split.passive_indices(parent);
            for (std::size_t s = 0; s < act.size(); ++s) {
              const double ca = ta.get(v, act[s]);
              if (ca != 0.0) entries.push_back({parent, pas[s], ca});
            }
          }
          if (entries.empty()) return;
          auto& row = ws.row;
          std::fill(row.begin(), row.end(), 0.0);
          bool any = false;
          for (VertexId u : graph_.neighbors(v)) {
            if (!tp.has_vertex(u)) continue;
            any = true;
            for (const auto& entry : entries) {
              row[entry.parent] += entry.value * tp.get(u, entry.passive);
            }
          }
          if (any) out.commit_row(v, row);
        });
  }

  const Graph& graph_;
  const PartitionTree& partition_;
  int k_;
  DpEngineOptions opts_;
  const RunGuard* guard_ = nullptr;
  /// Candidate override for run_delta(): when set, every kernel sweeps
  /// this sorted list instead of its usual candidate source (with the
  /// leaf label filter re-applied per vertex where one exists), and
  /// the SpMM gates price their export against it.  Null outside
  /// delta passes.
  const std::vector<VertexId>* delta_restrict_ = nullptr;
  std::vector<std::unique_ptr<Table>> tables_;
  std::vector<std::vector<VertexId>> frontiers_;
  std::vector<std::optional<SingleActiveSplit>> single_splits_;
  std::map<std::pair<int, int>, SplitTable> general_splits_;
  /// Per-node split pointers resolved at construction — the kernels
  /// never hit the optional/map lookups on the hot path.
  std::vector<const SingleActiveSplit*> node_single_;
  std::vector<const SplitTable*> node_general_;
  std::vector<std::size_t> node_active_bound_;
  std::vector<ColorsetIndex> pair_index_;
  std::vector<DpStageStats> stats_;
  /// Per-thread scratch, persistent across stages and iterations.
  std::vector<Workspace> workspaces_;
  /// SpMM multivector export, rebuilt per eligible stage (buffers keep
  /// their capacity), plus the peak bytes it ever held.
  SpmmMultivector spmm_;
  std::size_t spmm_peak_bytes_ = 0;
  /// Out-of-core paging state (sized only when the spill knobs are
  /// set): page path per spilled node (empty = resident), resident
  /// bytes per node, consuming stages per node (ascending).
  std::vector<std::string> spilled_to_;
  std::vector<std::size_t> node_bytes_;
  std::vector<std::vector<int>> consumers_;
  std::size_t resident_bytes_ = 0;
  std::size_t spilled_bytes_ = 0;
  int spill_events_ = 0;
  int spill_tag_ = 0;
};

}  // namespace fascia
