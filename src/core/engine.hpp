#pragma once
// The dynamic-programming engine (Alg. 2), templated on the count
// table so the innermost loop is compile-time dispatched.
//
// One engine instance serves one (graph, template, partition, k)
// combination and may run many iterations; tables are allocated per
// node when its pass starts and freed on the partition's free_after
// schedule (≤ ~4 live at once, §III-C), except in keep_tables mode
// used by the embedding extractor.
//
// Kernel selection per non-leaf subtemplate S (size h, active child
// size a, passive size p = h - a):
//   * h == 2          — both children are single vertices: counts come
//                       straight from the two endpoint colors.
//   * a == 1          — the paper's one-at-a-time fast path: only the
//                       C(k-1, h-1) colorsets containing color(v) are
//                       touched (§III-D).
//   * p == 1          — mirrored fast path keyed by the neighbor color.
//   * otherwise       — general split-table kernel (Alg. 2 lines 7-15).

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "comb/binomial.hpp"
#include "comb/split_table.hpp"
#include "graph/graph.hpp"
#include "run/guard.hpp"
#include "treelet/partition.hpp"
#include "treelet/tree_template.hpp"

namespace fascia {

/// Colors are small ints; one byte per vertex.
using ColorArray = std::vector<std::uint8_t>;

template <class Table>
class DpEngine {
 public:
  /// The engine is independent of the originating template(s): leaf
  /// label filters travel inside the partition nodes (root_label), so
  /// a merged multi-template DAG (sched::plan_batch) runs unchanged.
  DpEngine(const Graph& graph, const PartitionTree& partition, int num_colors)
      : graph_(graph), partition_(partition), k_(num_colors) {
    const int num_nodes = partition_.num_nodes();
    tables_.resize(static_cast<std::size_t>(num_nodes));
    single_splits_.resize(static_cast<std::size_t>(k_) + 1);
    for (int i = 0; i < num_nodes; ++i) {
      const Subtemplate& node = partition_.node(i);
      if (node.is_leaf()) continue;
      const int h = node.size();
      const int a = partition_.node(node.active).size();
      if (a == 1 || h - a == 1) {
        if (h >= 2 && !single_splits_[static_cast<std::size_t>(h)]) {
          single_splits_[static_cast<std::size_t>(h)].emplace(k_, h);
        }
      }
      if (a > 1 && h - a > 1) {
        general_splits_.try_emplace(std::make_pair(h, a), k_, h, a);
      }
    }
    // Pair-index matrix for the h == 2 kernel: index of {c1, c2}.
    pair_index_.assign(static_cast<std::size_t>(k_) * k_, 0);
    for (int c1 = 0; c1 < k_; ++c1) {
      for (int c2 = 0; c2 < k_; ++c2) {
        if (c1 == c2) continue;
        const int lo = std::min(c1, c2), hi = std::max(c1, c2);
        const std::array<int, 2> colors = {lo, hi};
        pair_index_[static_cast<std::size_t>(c1) * k_ + c2] =
            colorset_index(colors);
      }
    }
  }

  DpEngine(const Graph& graph, const TreeTemplate& tmpl,
           const PartitionTree& partition, int num_colors)
      : DpEngine(graph, partition, num_colors) {
    (void)tmpl;  // labels already live in the partition nodes
  }

  /// One bottom-up DP pass for a fixed coloring, filling the per-node
  /// tables.  When `needed` is non-null (size num_nodes) only flagged
  /// nodes are computed — the batch scheduler masks off stages no
  /// active job demands; the mask must be closed under children.
  /// Intermediate tables are freed on the free_after schedule unless
  /// keep_tables; nodes with free_after == -1 survive until
  /// release_all_tables() so callers can read them.
  void compute_tables(const ColorArray& colors, bool parallel_inner,
                      const std::vector<char>* needed = nullptr,
                      bool keep_tables = false) {
    release_all_tables();
    const int num_nodes = partition_.num_nodes();
    for (int i = 0; i < num_nodes; ++i) {
      // Cooperative stop (run/guard.hpp): polled between stage passes
      // so a deadline or budget trips within one node pass, not one
      // full iteration.  The aborted pass's tables are released; the
      // caller sees guard->stopped() and discards the iteration.
      if (guard_ != nullptr && guard_->poll()) {
        release_all_tables();
        return;
      }
      const Subtemplate& node = partition_.node(i);
      const bool wanted =
          needed == nullptr || (*needed)[static_cast<std::size_t>(i)] != 0;
      if (!node.is_leaf() && wanted) {
        compute_node(i, colors, parallel_inner);
      }
      if (!keep_tables) {
        for (int j = 0; j < i; ++j) {
          if (partition_.node(j).free_after == i) {
            tables_[static_cast<std::size_t>(j)].reset();
          }
        }
      }
    }
  }

  /// Colorful-embedding total of a computed non-leaf node's table.
  [[nodiscard]] double node_total(int node) const {
    return tables_[static_cast<std::size_t>(node)]->total();
  }

  /// Count of graph vertices matching a leaf node's label filter — the
  /// DP base case a single-vertex template degenerates to.
  [[nodiscard]] double leaf_count(int node) const {
    const Subtemplate& leaf = partition_.node(node);
    double count = 0.0;
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      if (leaf_matches(leaf, v)) count += 1.0;
    }
    return count;
  }

  /// One full bottom-up DP pass for a fixed coloring; returns the sum
  /// over the root table (Alg. 2 line 20).  When per_vertex is
  /// non-null it must have size n; root-table vertex totals are
  /// *added* into it.
  double run(const ColorArray& colors, bool parallel_inner,
             std::vector<double>* per_vertex = nullptr,
             bool keep_tables = false) {
    compute_tables(colors, parallel_inner, nullptr, keep_tables);
    if (guard_ != nullptr && guard_->stopped()) return 0.0;

    const int root = partition_.root_node();
    const Subtemplate& root_node = partition_.node(root);
    if (root_node.is_leaf()) {
      // Single-vertex template: every (label-matching) vertex counts 1.
      double count = 0.0;
      for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
        if (leaf_matches(root_node, v)) {
          count += 1.0;
          if (per_vertex != nullptr) {
            (*per_vertex)[static_cast<std::size_t>(v)] += 1.0;
          }
        }
      }
      return count;
    }

    const Table& table = *tables_[static_cast<std::size_t>(root)];
    if (per_vertex != nullptr) {
      for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
        (*per_vertex)[static_cast<std::size_t>(v)] += table.vertex_total(v);
      }
    }
    const double total = table.total();
    if (!keep_tables) release_all_tables();
    return total;
  }

  /// Table for a node (nullptr for leaves or freed nodes); valid after
  /// run(..., keep_tables = true).
  [[nodiscard]] const Table* table(int node) const noexcept {
    return tables_[static_cast<std::size_t>(node)].get();
  }

  [[nodiscard]] const PartitionTree& partition() const noexcept {
    return partition_;
  }
  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] int num_colors() const noexcept { return k_; }

  /// Attaches a cooperative stop condition; nullptr detaches.  The
  /// guard must outlive every subsequent compute_tables()/run() call.
  void set_guard(const RunGuard* guard) noexcept { guard_ = guard; }

  void release_all_tables() noexcept {
    for (auto& table : tables_) table.reset();
  }

 private:
  /// Leaf base case (Alg. 2 line 4) with the labeled-mode filter: a
  /// single-vertex subtemplate matches graph vertex v iff labels agree
  /// (§V-A).  The label is carried by the partition node so the engine
  /// needs no back-reference to the originating template.
  [[nodiscard]] bool leaf_matches(const Subtemplate& leaf,
                                  VertexId v) const noexcept {
    if (leaf.root_label < 0 || !graph_.has_labels()) return true;
    return leaf.root_label == static_cast<int>(graph_.label(v));
  }

  void compute_node(int index, const ColorArray& colors, bool parallel) {
    const Subtemplate& node = partition_.node(index);
    const int h = node.size();
    const auto num_sets = num_colorsets(k_, h);
    auto table = std::make_unique<Table>(graph_.num_vertices(), num_sets);

    const Subtemplate& active = partition_.node(node.active);
    const Subtemplate& passive = partition_.node(node.passive);
    const int a = active.size();
    const int p = passive.size();

    if (h == 2) {
      kernel_pair(*table, node, colors, parallel);
    } else if (a == 1) {
      kernel_single_active(*table, node, colors, parallel);
    } else if (p == 1) {
      kernel_single_passive(*table, node, colors, parallel);
    } else {
      kernel_general(*table, node, colors, parallel);
    }
    tables_[static_cast<std::size_t>(index)] = std::move(table);
  }

  // ---- kernels ----------------------------------------------------------
  // Each loops over graph vertices (optionally OpenMP-parallel), fills
  // a thread-private row buffer of C(k,h) counts for vertex v, and
  // commits it.  commit_row is safe for distinct vertices by the table
  // contract.

  /// Per-thread scratch for one kernel pass.
  struct Workspace {
    std::vector<double> row;  ///< count per parent colorset, for one v
    /// Compressed nonzero active-side entries (general kernel only):
    /// the active table's value for (v, act) hoisted out of the
    /// neighbor loop.
    struct ActiveEntry {
      ColorsetIndex parent;
      ColorsetIndex passive;
      double value;
    };
    std::vector<ActiveEntry> active_entries;
  };

  template <class Body>
  void for_all_vertices(bool parallel, std::uint32_t row_width,
                        Body&& body) {
    const VertexId n = graph_.num_vertices();
#ifdef _OPENMP
    if (parallel) {
#pragma omp parallel
      {
        Workspace workspace;
        workspace.row.resize(row_width);
#pragma omp for schedule(dynamic, 64)
        for (VertexId v = 0; v < n; ++v) body(v, workspace);
      }
      return;
    }
#endif
    Workspace workspace;
    workspace.row.resize(row_width);
    for (VertexId v = 0; v < n; ++v) body(v, workspace);
  }

  void kernel_pair(Table& out, const Subtemplate& node,
                   const ColorArray& colors, bool parallel) {
    const Subtemplate& active = partition_.node(node.active);
    const Subtemplate& passive = partition_.node(node.passive);
    for_all_vertices(
        parallel, out.num_colorsets(),
        [&](VertexId v, Workspace& ws) {
          if (!leaf_matches(active, v)) return;
          auto& row = ws.row;
          std::fill(row.begin(), row.end(), 0.0);
          const int cv = colors[static_cast<std::size_t>(v)];
          bool any = false;
          for (VertexId u : graph_.neighbors(v)) {
            const int cu = colors[static_cast<std::size_t>(u)];
            if (cu == cv || !leaf_matches(passive, u)) continue;
            row[pair_index_[static_cast<std::size_t>(cv) * k_ + cu]] += 1.0;
            any = true;
          }
          if (any) out.commit_row(v, row);
        });
  }

  void kernel_single_active(Table& out, const Subtemplate& node,
                            const ColorArray& colors, bool parallel) {
    const Subtemplate& active = partition_.node(node.active);
    const Table& tp = *tables_[static_cast<std::size_t>(node.passive)];
    const SingleActiveSplit& split =
        *single_splits_[static_cast<std::size_t>(node.size())];
    for_all_vertices(
        parallel, out.num_colorsets(),
        [&](VertexId v, Workspace& ws) {
          if (!leaf_matches(active, v)) return;
          auto& row = ws.row;
          std::fill(row.begin(), row.end(), 0.0);
          const int cv = colors[static_cast<std::size_t>(v)];
          const auto entries = split.entries(cv);
          bool any = false;
          for (VertexId u : graph_.neighbors(v)) {
            if (!tp.has_vertex(u)) continue;
            any = true;
            for (const auto& entry : entries) {
              row[entry.parent] += tp.get(u, entry.passive);
            }
          }
          if (any) out.commit_row(v, row);
        });
  }

  void kernel_single_passive(Table& out, const Subtemplate& node,
                             const ColorArray& colors, bool parallel) {
    const Subtemplate& passive = partition_.node(node.passive);
    const Table& ta = *tables_[static_cast<std::size_t>(node.active)];
    const SingleActiveSplit& split =
        *single_splits_[static_cast<std::size_t>(node.size())];
    for_all_vertices(
        parallel, out.num_colorsets(),
        [&](VertexId v, Workspace& ws) {
          if (!ta.has_vertex(v)) return;
          auto& row = ws.row;
          std::fill(row.begin(), row.end(), 0.0);
          bool any = false;
          for (VertexId u : graph_.neighbors(v)) {
            if (!leaf_matches(passive, u)) continue;
            const int cu = colors[static_cast<std::size_t>(u)];
            for (const auto& entry : split.entries(cu)) {
              // entry.passive here indexes the parent set minus the
              // neighbor's color — which is exactly the active child's
              // colorset C_a.
              const double count = ta.get(v, entry.passive);
              if (count != 0.0) {
                row[entry.parent] += count;
                any = true;
              }
            }
          }
          if (any) out.commit_row(v, row);
        });
  }

  void kernel_general(Table& out, const Subtemplate& node,
                      const ColorArray& colors, bool parallel) {
    (void)colors;  // colors only matter at the leaves
    const Table& ta = *tables_[static_cast<std::size_t>(node.active)];
    const Table& tp = *tables_[static_cast<std::size_t>(node.passive)];
    const int h = node.size();
    const int a = partition_.node(node.active).size();
    const SplitTable& split = general_splits_.at(std::make_pair(h, a));
    const auto num_parents = out.num_colorsets();
    for_all_vertices(
        parallel, num_parents,
        [&](VertexId v, Workspace& ws) {
          if (!ta.has_vertex(v)) return;
          // The active side depends only on v: hoist its nonzero
          // (parent, passive, value) triples out of the neighbor loop.
          // Only ~C(k-1,h-1)·C(h-1,a-1) of the C(k,h)·C(h,a) split
          // slots survive (those whose active set contains color(v)),
          // so this both skips zeros and drops a table read per
          // neighbor — the dominant cost per the paper's >90 % figure.
          auto& entries = ws.active_entries;
          entries.clear();
          for (ColorsetIndex parent = 0; parent < num_parents; ++parent) {
            const auto act = split.active_indices(parent);
            const auto pas = split.passive_indices(parent);
            for (std::size_t s = 0; s < act.size(); ++s) {
              const double ca = ta.get(v, act[s]);
              if (ca != 0.0) entries.push_back({parent, pas[s], ca});
            }
          }
          if (entries.empty()) return;
          auto& row = ws.row;
          std::fill(row.begin(), row.end(), 0.0);
          bool any = false;
          for (VertexId u : graph_.neighbors(v)) {
            if (!tp.has_vertex(u)) continue;
            any = true;
            for (const auto& entry : entries) {
              row[entry.parent] += entry.value * tp.get(u, entry.passive);
            }
          }
          if (any) out.commit_row(v, row);
        });
  }

  const Graph& graph_;
  const PartitionTree& partition_;
  int k_;
  const RunGuard* guard_ = nullptr;
  std::vector<std::unique_ptr<Table>> tables_;
  std::vector<std::optional<SingleActiveSplit>> single_splits_;
  std::map<std::pair<int, int>, SplitTable> general_splits_;
  std::vector<ColorsetIndex> pair_index_;
};

}  // namespace fascia
