#pragma once
// Embedding extraction for mixed (triangle-block) templates,
// completing the "E" in FASCIA for the extension class: sample
// concrete embeddings by walking the triangle-join DP back down.

#include <vector>

#include "core/count_options.hpp"
#include "core/extract.hpp"
#include "graph/graph.hpp"
#include "treelet/mixed_template.hpp"

namespace fascia {

/// Draws up to `how_many` embeddings of `tmpl` (tree or triangle-block
/// template), re-coloring as needed; same semantics as the tree
/// sampler.  Trees are served by the tree pipeline.
std::vector<Embedding> sample_mixed_embeddings(
    const Graph& graph, const MixedTemplate& tmpl, std::size_t how_many,
    const CountOptions& options = {}, int max_coloring_attempts = 32);

/// Validity check for mixed-template embeddings (distinct vertices,
/// every template edge present — including triangle edges — labels
/// matching).
bool is_valid_mixed_embedding(const Graph& graph, const MixedTemplate& tmpl,
                              const Embedding& embedding);

}  // namespace fascia
