#pragma once
// Random coloring helpers shared by the tree and mixed counters.
//
// Iteration i's coloring depends only on (seed, i), which is what
// makes every estimate deterministic across parallel modes and thread
// counts.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace fascia::detail {

/// Seed for iteration i, decorrelated from the base seed.
inline std::uint64_t iteration_seed(std::uint64_t base, int iteration) {
  std::uint64_t state = base + 0x632be59bd9b4e019ULL *
                                   static_cast<std::uint64_t>(iteration + 1);
  return splitmix64(state);
}

/// Uniform color in [0, num_colors) per vertex.
inline std::vector<std::uint8_t> random_coloring(const Graph& graph,
                                                 int num_colors,
                                                 std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> colors(
      static_cast<std::size_t>(graph.num_vertices()));
  for (auto& color : colors) {
    color = static_cast<std::uint8_t>(
        rng.bounded(static_cast<std::uint32_t>(num_colors)));
  }
  return colors;
}

/// Same color stream as random_coloring, scattered through a vertex
/// permutation: reordered vertex to_new[v] receives the color the
/// ORIGINAL vertex v draws.  This is what keeps estimates bit-identical
/// under graph reordering — the color sequence is keyed on original
/// ids, and every DP sum is an exact integer in a double, so the
/// reassociated totals match bit for bit.
inline std::vector<std::uint8_t> random_coloring_permuted(
    int num_colors, std::uint64_t seed, const std::vector<VertexId>& to_new) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> colors(to_new.size());
  for (VertexId to : to_new) {
    colors[static_cast<std::size_t>(to)] = static_cast<std::uint8_t>(
        rng.bounded(static_cast<std::uint32_t>(num_colors)));
  }
  return colors;
}

}  // namespace fascia::detail
