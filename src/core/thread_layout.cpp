#include "core/thread_layout.hpp"

#include <algorithm>

namespace fascia {

namespace {

/// Minimum frontier vertices one inner thread must own for the sweep
/// to amortize scheduling and merge overhead (measured grain of the
/// dynamic/guided loops in engine.hpp).
constexpr double kMinFrontierPerThread = 2048.0;

}  // namespace

ThreadLayout choose_layout(const LayoutInputs& in) {
  const int threads = std::max(1, in.threads);
  const int iterations = std::max(1, in.iterations);

  // Most inner threads the measured frontiers can keep busy.
  const double useful = in.frontier_occupancy *
                        static_cast<double>(in.num_vertices) /
                        kMinFrontierPerThread;
  const int max_inner = std::clamp(static_cast<int>(useful), 1, threads);

  // Fewest copies that soak up the whole pool at that inner width.
  int copies = (threads + max_inner - 1) / max_inner;

  // Outer copies beyond the remaining iterations would idle, and each
  // copy owns private tables, so the budget caps the count too.
  copies = std::min(copies, iterations);
  const std::size_t bytes_per_copy =
      in.table_bytes_per_copy + in.spmm_bytes_per_copy;
  if (in.memory_budget_bytes > 0 && bytes_per_copy > 0) {
    const auto mem_cap = static_cast<int>(std::min<std::size_t>(
        in.memory_budget_bytes / bytes_per_copy,
        static_cast<std::size_t>(threads)));
    copies = std::min(copies, std::max(1, mem_cap));
  }
  if (in.forced_outer_copies > 0) {
    copies = std::clamp(in.forced_outer_copies, 1, threads);
  }
  copies = std::max(1, std::min(copies, threads));

  ThreadLayout layout;
  layout.outer_copies = copies;
  layout.inner_threads = std::max(1, threads / copies);
  return layout;
}

}  // namespace fascia
