#include "core/incremental.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "comb/binomial.hpp"
#include "core/coloring.hpp"
#include "core/counter.hpp"
#include "core/engine.hpp"
#include "dp/table_compact.hpp"
#include "dp/table_hash.hpp"
#include "dp/table_naive.hpp"
#include "dp/table_succinct.hpp"
#include "graph/delta.hpp"
#include "obs/report.hpp"
#include "treelet/canonical.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace fascia {
namespace {

using detail::iteration_seed;
using detail::random_coloring;

int resolve_inner_threads(const CountOptions& options) {
  if (options.execution.mode == ParallelMode::kSerial) return 1;
#ifdef _OPENMP
  return options.execution.threads > 0 ? options.execution.threads
                                       : omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace

class RunHandle::Impl {
 public:
  virtual ~Impl() = default;
  [[nodiscard]] virtual const CountResult& result() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t graph_version() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t recounts() const noexcept = 0;
  [[nodiscard]] virtual std::size_t retained_bytes() const noexcept = 0;
  virtual const CountResult& recount(const Graph& new_graph,
                                     const GraphDelta& delta) = 0;
};

namespace {

/// The retained-state run loop for one table layout.  Owns everything
/// a recount needs except the graph itself, which the caller passes
/// back in (the engine re-binds to it per pass, so the handle works
/// with in-place mutation and with the service's copy-on-mutate
/// registry alike).
template <class Table>
class IncrementalState final : public RunHandle::Impl {
 public:
  IncrementalState(const Graph& graph, const TreeTemplate& tmpl,
                   const CountOptions& options)
      : tmpl_(tmpl),
        options_(options),
        partition_(partition_template(tmpl, options.execution.partition,
                                      options.execution.share_tables,
                                      options.root)),
        k_(effective_colors(tmpl, options)),
        n_(graph.num_vertices()) {
    engine_opts_.spmm_kernels =
        options_.execution.kernel_family == KernelFamily::kSpmm;
    engine_opts_.inner_threads = resolve_inner_threads(options_);
    if (graph.has_labels()) {
      // Edge deltas never change labels, so the per-label frontier
      // lists are built once and shared across every recount.
      engine_opts_.label_frontiers = LabelFrontiers::build(graph);
    }
    parallel_inner_ = engine_opts_.inner_threads > 1;

    result_.automorphisms = automorphisms(tmpl_);
    result_.root_stabilizer =
        vertex_stabilizer(tmpl_, partition_.template_root());
    result_.colorful_probability = colorful_probability(k_, tmpl_.size());
    result_.dp_cost = partition_.dp_cost(k_);
    result_.max_live_tables = partition_.max_live_tables();
    result_.num_subtemplates = partition_.num_nodes();
    scale_ = 1.0 / (result_.colorful_probability *
                    static_cast<double>(result_.automorphisms));
    vertex_scale_ = 1.0 / (result_.colorful_probability *
                           static_cast<double>(result_.root_stabilizer));

    const int iterations = options_.sampling.iterations;
    retained_.resize(static_cast<std::size_t>(iterations));
    result_.per_iteration.assign(static_cast<std::size_t>(iterations), 0.0);
    result_.seconds_per_iteration.assign(static_cast<std::size_t>(iterations),
                                         0.0);
    std::vector<double> vertex_accumulator;
    if (options_.per_vertex) {
      vertex_accumulator.assign(static_cast<std::size_t>(n_), 0.0);
    }
    WallTimer total_timer;
    DpEngine<Table> engine(graph, tmpl_, partition_, k_, engine_opts_);
    for (int iter = 0; iter < iterations; ++iter) {
      WallTimer timer;
      const ColorArray colors =
          random_coloring(graph, k_, iteration_seed(options_.sampling.seed,
                                                    iter));
      const double raw = engine.run(
          colors, parallel_inner_,
          options_.per_vertex ? &vertex_accumulator : nullptr,
          /*keep_tables=*/true);
      retained_[static_cast<std::size_t>(iter)] = engine.take_retained();
      result_.per_iteration[static_cast<std::size_t>(iter)] = raw * scale_;
      result_.seconds_per_iteration[static_cast<std::size_t>(iter)] =
          timer.elapsed_s();
    }
    finalize(graph, total_timer.elapsed_s(), vertex_accumulator);
  }

  [[nodiscard]] const CountResult& result() const noexcept override {
    return result_;
  }
  [[nodiscard]] std::uint64_t graph_version() const noexcept override {
    return graph_version_;
  }
  [[nodiscard]] std::uint64_t recounts() const noexcept override {
    return recounts_;
  }

  [[nodiscard]] std::size_t retained_bytes() const noexcept override {
    std::size_t bytes = 0;
    for (const auto& pass : retained_) {
      for (const auto& table : pass.tables) {
        if (table != nullptr) bytes += table->bytes();
      }
      for (const auto& frontier : pass.frontiers) {
        bytes += frontier.size() * sizeof(VertexId);
      }
    }
    return bytes;
  }

  const CountResult& recount(const Graph& new_graph,
                             const GraphDelta& delta) override {
    if (poisoned_) {
      throw usage_error(
          "RunHandle::recount: handle was poisoned by a failed recount; "
          "begin_incremental again");
    }
    if (new_graph.num_vertices() != n_) {
      throw bad_input("RunHandle::recount: graph vertex count changed (" +
                      std::to_string(n_) + " -> " +
                      std::to_string(new_graph.num_vertices()) + ")");
    }
    if (fault::fire("delta.recount")) throw fault::Injected("delta.recount");
    // Any throw below leaves retained_ partially advanced: poison the
    // handle now and clear the flag only on a clean finish.
    poisoned_ = true;

    const std::vector<VertexId> seeds = delta.touched_vertices();
    const DirtyBalls dirty =
        DirtyBalls::build(new_graph, seeds, tmpl_.size() - 1);

    std::vector<double> vertex_accumulator;
    if (options_.per_vertex) {
      vertex_accumulator.assign(static_cast<std::size_t>(n_), 0.0);
    }
    typename DpEngine<Table>::DeltaPassStats pass_stats;
    WallTimer total_timer;
    DpEngine<Table> engine(new_graph, tmpl_, partition_, k_, engine_opts_);
    const int iterations = options_.sampling.iterations;
    for (int iter = 0; iter < iterations; ++iter) {
      WallTimer timer;
      // Same (seed, iter) -> same coloring as the retained pass: the
      // coloring stream is keyed on vertex ids, never on edges.
      const ColorArray colors = random_coloring(
          new_graph, k_, iteration_seed(options_.sampling.seed, iter));
      engine.adopt_retained(
          std::move(retained_[static_cast<std::size_t>(iter)]));
      const double raw = engine.run_delta(
          colors, parallel_inner_, dirty, &pass_stats,
          options_.per_vertex ? &vertex_accumulator : nullptr);
      retained_[static_cast<std::size_t>(iter)] = engine.take_retained();
      result_.per_iteration[static_cast<std::size_t>(iter)] = raw * scale_;
      result_.seconds_per_iteration[static_cast<std::size_t>(iter)] =
          timer.elapsed_s();
    }

    result_.delta.applied_edges = static_cast<std::uint64_t>(delta.size());
    result_.delta.dirty_vertices = static_cast<std::uint64_t>(
        dirty.at(tmpl_.size() - 1).size());
    result_.delta.dirty_fraction =
        n_ > 0 ? static_cast<double>(result_.delta.dirty_vertices) /
                     static_cast<double>(n_)
               : 0.0;
    result_.delta.stages_recomputed =
        static_cast<std::uint64_t>(pass_stats.stages_recomputed);
    result_.delta.rows_recomputed = pass_stats.rows_recomputed;
    result_.delta.rows_copied = pass_stats.rows_copied;
    ++recounts_;
    finalize(new_graph, total_timer.elapsed_s(), vertex_accumulator);
    poisoned_ = false;
    return result_;
  }

 private:
  /// Shared tail of the initial run and every recount: estimate,
  /// per-vertex scaling, run status, and a fresh report.
  void finalize(const Graph& graph, double seconds,
                const std::vector<double>& vertex_accumulator) {
    result_.seconds_total = seconds;
    result_.estimate = mean(result_.per_iteration);
    result_.relative_stderr = relative_mean_stderr(result_.per_iteration);
    const int iterations = options_.sampling.iterations;
    if (options_.per_vertex) {
      result_.vertex_counts.assign(static_cast<std::size_t>(n_), 0.0);
      for (std::size_t v = 0; v < static_cast<std::size_t>(n_); ++v) {
        result_.vertex_counts[v] = vertex_accumulator[v] * vertex_scale_ /
                                   static_cast<double>(iterations);
      }
    }
    result_.layout = {1, engine_opts_.inner_threads};
    result_.peak_table_bytes = retained_bytes();
    result_.run.status = RunStatus::kCompleted;
    result_.run.completed_iterations = iterations;
    result_.run.requested_iterations = iterations;
    result_.run.table_used = options_.execution.table;
    result_.run.engine_copies = 1;
    graph_version_ = graph.version();
    result_.report = build_report(graph);
  }

  [[nodiscard]] std::shared_ptr<const obs::RunReport> build_report(
      const Graph& graph) const {
    auto report = std::make_shared<obs::RunReport>();
    report->kind = "incremental_count";
    report->label = options_.observability.label;
    report->options = {
        {"execution.table", Table::kName},
        {"execution.kernel_family",
         kernel_family_name(options_.execution.kernel_family)},
        {"execution.incremental", "true"},
        {"sampling.iterations",
         std::to_string(options_.sampling.iterations)},
        {"sampling.num_colors", std::to_string(k_)},
        {"sampling.seed", std::to_string(options_.sampling.seed)},
    };
    report->graph.vertices = static_cast<std::int64_t>(graph.num_vertices());
    report->graph.edges = static_cast<std::int64_t>(graph.num_edges());
    report->graph.max_degree = static_cast<std::int64_t>(graph.max_degree());
    report->graph.labeled = graph.has_labels();
    report->tmpl.vertices = tmpl_.size();
    report->tmpl.root = partition_.template_root();
    report->tmpl.subtemplates = partition_.num_nodes();
    report->sampling.requested_iterations = options_.sampling.iterations;
    report->sampling.completed_iterations = options_.sampling.iterations;
    report->sampling.num_colors = k_;
    report->sampling.seed = options_.sampling.seed;
    report->sampling.estimate = result_.estimate;
    report->sampling.relative_stderr = result_.relative_stderr;
    report->sampling.colorful_probability = result_.colorful_probability;
    report->sampling.automorphisms = result_.automorphisms;
    report->sampling.trajectory = result_.running_estimates();
    report->timing.total_seconds = result_.seconds_total;
    report->timing.per_iteration_seconds = result_.seconds_per_iteration;
    report->memory.observed_peak_bytes = result_.peak_table_bytes;
    report->memory.table = Table::kName;
    report->threads.mode = parallel_mode_name(options_.execution.mode);
    report->threads.inner_threads = engine_opts_.inner_threads;
#ifdef _OPENMP
    report->threads.omp_max_threads = omp_get_max_threads();
#endif
    report->delta.incremental = true;
    report->delta.graph_version = graph_version_;
    report->delta.recounts = recounts_;
    report->delta.applied_edges = result_.delta.applied_edges;
    report->delta.dirty_vertices = result_.delta.dirty_vertices;
    report->delta.dirty_fraction = result_.delta.dirty_fraction;
    report->delta.stages_recomputed = result_.delta.stages_recomputed;
    report->delta.rows_recomputed = result_.delta.rows_recomputed;
    report->delta.rows_copied = result_.delta.rows_copied;
    return report;
  }

  TreeTemplate tmpl_;
  CountOptions options_;
  PartitionTree partition_;
  int k_;
  VertexId n_;
  DpEngineOptions engine_opts_;
  bool parallel_inner_ = false;
  double scale_ = 1.0;
  double vertex_scale_ = 1.0;
  std::vector<typename DpEngine<Table>::Retained> retained_;
  CountResult result_;
  std::uint64_t graph_version_ = 0;
  std::uint64_t recounts_ = 0;
  bool poisoned_ = false;
};

}  // namespace

RunHandle::RunHandle(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
RunHandle::RunHandle(RunHandle&&) noexcept = default;
RunHandle& RunHandle::operator=(RunHandle&&) noexcept = default;
RunHandle::~RunHandle() = default;

const CountResult& RunHandle::result() const noexcept {
  return impl_->result();
}
std::uint64_t RunHandle::graph_version() const noexcept {
  return impl_->graph_version();
}
std::uint64_t RunHandle::recounts() const noexcept {
  return impl_->recounts();
}
std::size_t RunHandle::retained_bytes() const noexcept {
  return impl_->retained_bytes();
}
const CountResult& RunHandle::recount(const Graph& new_graph,
                                      const GraphDelta& delta) {
  return impl_->recount(new_graph, delta);
}

RunHandle begin_incremental(const Graph& graph, const TreeTemplate& tmpl,
                            const CountOptions& options) {
  CountOptions opts = options;
  opts.execution.incremental = true;
  if (tmpl.has_labels() != graph.has_labels()) {
    throw std::invalid_argument(
        "begin_incremental: template and graph must both be labeled or "
        "both unlabeled");
  }
  const int k = effective_colors(tmpl, opts);
  if (k < tmpl.size()) {
    throw std::invalid_argument(
        "begin_incremental: num_colors must be >= template size");
  }
  if (k > kMaxTemplateSize) {
    throw std::invalid_argument("begin_incremental: too many colors");
  }
  if (opts.sampling.iterations < 1) {
    throw std::invalid_argument(
        "begin_incremental: iterations must be >= 1");
  }
  if (opts.root < -1 || opts.root >= tmpl.size()) {
    throw std::invalid_argument("begin_incremental: root out of range");
  }
  opts.validate();

  std::unique_ptr<RunHandle::Impl> impl;
  switch (opts.execution.table) {
    case TableKind::kNaive:
      impl = std::make_unique<IncrementalState<NaiveTable>>(graph, tmpl,
                                                            opts);
      break;
    case TableKind::kCompact:
      impl = std::make_unique<IncrementalState<CompactTable>>(graph, tmpl,
                                                              opts);
      break;
    case TableKind::kHash:
      impl = std::make_unique<IncrementalState<HashTable>>(graph, tmpl,
                                                           opts);
      break;
    case TableKind::kSuccinct:
      impl = std::make_unique<IncrementalState<SuccinctTable>>(graph, tmpl,
                                                               opts);
      break;
  }
  if (impl == nullptr) {
    throw internal_error("begin_incremental: bad TableKind");
  }
  return RunHandle(std::move(impl));
}

}  // namespace fascia
