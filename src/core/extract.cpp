#include "core/extract.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "core/counter.hpp"
#include "core/engine.hpp"
#include "dp/table_compact.hpp"
#include "util/rng.hpp"

namespace fascia {

namespace {

// The extractor always uses the compact table: extraction is not the
// hot path and compact's has_vertex checks keep the walks cheap.
using Table = CompactTable;

ColorArray coloring_for(const Graph& graph, int k, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ColorArray colors(static_cast<std::size_t>(graph.num_vertices()));
  for (auto& color : colors) {
    color = static_cast<std::uint8_t>(
        rng.bounded(static_cast<std::uint32_t>(k)));
  }
  return colors;
}

/// Shared walk state over a completed keep-tables DP run.
class Walker {
 public:
  Walker(DpEngine<Table>& engine, const TreeTemplate& tmpl,
         const ColorArray& colors)
      : engine_(engine), tmpl_(tmpl), colors_(colors) {}

  /// Samples one embedding from node `index` rooted at graph vertex v
  /// holding colorset `cset`; fills out[template_vertex].
  void sample_node(int index, VertexId v, ColorsetIndex cset,
                   std::vector<VertexId>& out, Xoshiro256& rng) {
    const Subtemplate& node = engine_.partition().node(index);
    if (node.is_leaf()) {
      out[static_cast<std::size_t>(node.root)] = v;
      return;
    }
    // Enumerate (u, split) choices with their weights; sample one.
    std::vector<std::tuple<VertexId, ColorsetIndex, ColorsetIndex>> choices;
    std::vector<double> weights;
    collect_choices(index, v, cset, choices, weights);
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) {
      throw std::logic_error("Walker: inconsistent DP tables");
    }
    double pick = rng.uniform() * total;
    std::size_t chosen = weights.size() - 1;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (pick < weights[i]) {
        chosen = i;
        break;
      }
      pick -= weights[i];
    }
    const auto [u, ca, cp] = choices[chosen];
    sample_node(node.active, v, ca, out, rng);
    sample_node(node.passive, u, cp, out, rng);
  }

  /// Work item: a subtemplate still to be expanded, anchored at a
  /// graph vertex with a fixed colorset.
  struct Frame {
    int node;
    VertexId vertex;
    ColorsetIndex cset;
  };

  /// Exhaustive descent: expands the pending frames depth-first; when
  /// none remain, `out` holds a complete embedding and `sink(out)` is
  /// invoked (return false from the sink to stop).  Returns false once
  /// stopped.
  template <class Sink>
  bool expand(std::vector<Frame>& work, std::vector<VertexId>& out,
              Sink&& sink) {
    if (work.empty()) return sink(out);
    const Frame frame = work.back();
    work.pop_back();
    const Subtemplate& node = engine_.partition().node(frame.node);
    bool keep_going = true;
    if (node.is_leaf()) {
      out[static_cast<std::size_t>(node.root)] = frame.vertex;
      keep_going = expand(work, out, sink);
    } else {
      std::vector<std::tuple<VertexId, ColorsetIndex, ColorsetIndex>> choices;
      std::vector<double> weights;
      collect_choices(frame.node, frame.vertex, frame.cset, choices, weights);
      for (const auto& [u, ca, cp] : choices) {
        work.push_back({node.active, frame.vertex, ca});
        work.push_back({node.passive, u, cp});
        keep_going = expand(work, out, sink);
        work.pop_back();
        work.pop_back();
        if (!keep_going) break;
      }
    }
    work.push_back(frame);
    return keep_going;
  }

 private:
  /// Weight of subtree choices at (node, v, cset): for each neighbor u
  /// and split (ca, cp), weight = T_active[v][ca] * T_passive[u][cp].
  void collect_choices(
      int index, VertexId v, ColorsetIndex cset,
      std::vector<std::tuple<VertexId, ColorsetIndex, ColorsetIndex>>& choices,
      std::vector<double>& weights) {
    const Subtemplate& node = engine_.partition().node(index);
    const Subtemplate& active = engine_.partition().node(node.active);
    const int h = node.size();
    const int a = active.size();

    // Expand cset into member colors, then enumerate all (a, h-a)
    // color splits directly (extraction is cold; clarity wins).
    std::vector<int> colors_of_set = colorset_colors(cset, h);
    std::vector<int> positions(static_cast<std::size_t>(a));
    for (int i = 0; i < a; ++i) positions[static_cast<std::size_t>(i)] = i;
    std::vector<int> act_colors(static_cast<std::size_t>(a));
    std::vector<int> pas_colors(static_cast<std::size_t>(h - a));
    do {
      std::size_t ai = 0, pi = 0, next = 0;
      for (int i = 0; i < h; ++i) {
        if (next < positions.size() && positions[next] == i) {
          act_colors[ai++] = colors_of_set[static_cast<std::size_t>(i)];
          ++next;
        } else {
          pas_colors[pi++] = colors_of_set[static_cast<std::size_t>(i)];
        }
      }
      const ColorsetIndex ca = colorset_index(act_colors);
      const ColorsetIndex cp = colorset_index(pas_colors);
      const double weight_a = node_value(node.active, v, ca);
      if (weight_a == 0.0) continue;
      for (VertexId u : engine_.graph().neighbors(v)) {
        const double weight_p = node_value(node.passive, u, cp);
        if (weight_p == 0.0) continue;
        choices.emplace_back(u, ca, cp);
        weights.push_back(weight_a * weight_p);
      }
    } while (next_colorset(positions, h));
  }

  /// DP value of node at (v, cset); leaves are implicit
  /// (1 iff colorset == {color(v)} and labels match).
  double node_value(int index, VertexId v, ColorsetIndex cset) {
    const Subtemplate& node = engine_.partition().node(index);
    if (node.is_leaf()) {
      const int cv = colors_[static_cast<std::size_t>(v)];
      if (cset != static_cast<ColorsetIndex>(cv)) return 0.0;
      if (tmpl_.has_labels() && engine_.graph().has_labels() &&
          tmpl_.label(node.root) != engine_.graph().label(v)) {
        return 0.0;
      }
      return 1.0;
    }
    const Table* table = engine_.table(index);
    return table == nullptr ? 0.0 : table->get(v, cset);
  }

  DpEngine<Table>& engine_;
  const TreeTemplate& tmpl_;
  const ColorArray& colors_;
};

}  // namespace

bool is_valid_embedding(const Graph& graph, const TreeTemplate& tmpl,
                        const Embedding& embedding) {
  if (static_cast<int>(embedding.vertices.size()) != tmpl.size()) return false;
  std::set<VertexId> distinct(embedding.vertices.begin(),
                              embedding.vertices.end());
  if (static_cast<int>(distinct.size()) != tmpl.size()) return false;
  for (VertexId v : embedding.vertices) {
    if (v < 0 || v >= graph.num_vertices()) return false;
  }
  for (auto [a, b] : tmpl.edges()) {
    if (!graph.has_edge(embedding.vertices[static_cast<std::size_t>(a)],
                        embedding.vertices[static_cast<std::size_t>(b)])) {
      return false;
    }
  }
  if (tmpl.has_labels() && graph.has_labels()) {
    for (int tv = 0; tv < tmpl.size(); ++tv) {
      if (tmpl.label(tv) !=
          graph.label(embedding.vertices[static_cast<std::size_t>(tv)])) {
        return false;
      }
    }
  }
  return true;
}

namespace {

/// Shared reorder wrapper: runs `body` on the reordered graph, then
/// maps every embedding's vertices back to original ids.  Extraction
/// results are therefore always keyed by original ids, matching the
/// counter's contract.
template <class Body>
std::vector<Embedding> with_reorder(const Graph& graph,
                                    const CountOptions& options, Body&& body) {
  if (options.execution.reorder == ReorderMode::kNone) return body(graph, options);
  const Permutation perm = reorder_permutation(graph, options.execution.reorder);
  const Graph reordered = apply_permutation(graph, perm);
  CountOptions reordered_options = options;
  reordered_options.execution.reorder = ReorderMode::kNone;
  std::vector<Embedding> out = body(reordered, reordered_options);
  for (Embedding& embedding : out) {
    for (VertexId& v : embedding.vertices) {
      v = perm.to_old[static_cast<std::size_t>(v)];
    }
  }
  return out;
}

}  // namespace

std::vector<Embedding> sample_embeddings(const Graph& graph,
                                         const TreeTemplate& tmpl,
                                         std::size_t how_many,
                                         const CountOptions& options,
                                         int max_coloring_attempts) {
  if (options.execution.reorder != ReorderMode::kNone) {
    return with_reorder(graph, options,
                        [&](const Graph& g, const CountOptions& o) {
                          return sample_embeddings(g, tmpl, how_many, o,
                                                   max_coloring_attempts);
                        });
  }
  const int k = effective_colors(tmpl, options);
  // Table sharing merges isomorphic subtemplates into one node, whose
  // recorded root/vertex ids belong to a single representative — the
  // walker needs each occurrence's true template vertices, so the
  // extractor always partitions without sharing.
  const PartitionTree partition = partition_template(
      tmpl, options.execution.partition, /*share_tables=*/false, options.root);
  DpEngine<Table> engine(graph, tmpl, partition, k);
  Xoshiro256 rng(options.sampling.seed ^ 0xabcdef12345678ULL);

  std::vector<Embedding> out;
  for (int attempt = 0;
       attempt < max_coloring_attempts && out.size() < how_many; ++attempt) {
    const ColorArray colors =
        coloring_for(graph, k, options.sampling.seed + static_cast<std::uint64_t>(attempt));
    const double total =
        engine.run(colors, /*parallel_inner=*/false, nullptr,
                   /*keep_tables=*/true);
    if (total <= 0.0) continue;

    Walker walker(engine, tmpl, colors);
    const int root = partition.root_node();
    const Table* root_table = engine.table(root);
    if (root_table == nullptr) break;  // size-1 template: no table
    // Build the (v, cset) marginal once per coloring.
    std::vector<std::pair<VertexId, double>> vertex_weights;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      const double w = root_table->vertex_total(v);
      if (w > 0.0) vertex_weights.emplace_back(v, w);
    }
    while (out.size() < how_many) {
      double pick = rng.uniform() * total;
      VertexId v = vertex_weights.back().first;
      for (const auto& [candidate, weight] : vertex_weights) {
        if (pick < weight) {
          v = candidate;
          break;
        }
        pick -= weight;
      }
      // Then a colorset within v.
      const auto num_sets = root_table->num_colorsets();
      double pick_set = rng.uniform() * root_table->vertex_total(v);
      ColorsetIndex cset = 0;
      for (ColorsetIndex c = 0; c < num_sets; ++c) {
        const double w = root_table->get(v, c);
        if (pick_set < w) {
          cset = c;
          break;
        }
        pick_set -= w;
      }
      Embedding embedding;
      embedding.vertices.assign(static_cast<std::size_t>(tmpl.size()), -1);
      walker.sample_node(root, v, cset, embedding.vertices, rng);
      out.push_back(std::move(embedding));
      // Spread samples across colorings: draw at most ~how_many/4 per
      // coloring so rare embeddings under one coloring do not dominate.
      if (out.size() % std::max<std::size_t>(1, how_many / 4) == 0) break;
    }
    engine.release_all_tables();
  }
  return out;
}

std::vector<Embedding> enumerate_embeddings(const Graph& graph,
                                            const TreeTemplate& tmpl,
                                            std::size_t limit,
                                            bool dedup_sets,
                                            const CountOptions& options) {
  if (options.execution.reorder != ReorderMode::kNone) {
    return with_reorder(graph, options,
                        [&](const Graph& g, const CountOptions& o) {
                          return enumerate_embeddings(g, tmpl, limit,
                                                      dedup_sets, o);
                        });
  }
  const int k = effective_colors(tmpl, options);
  // No table sharing: see sample_embeddings.
  const PartitionTree partition = partition_template(
      tmpl, options.execution.partition, /*share_tables=*/false, options.root);
  DpEngine<Table> engine(graph, tmpl, partition, k);
  const ColorArray colors = coloring_for(graph, k, options.sampling.seed);
  engine.run(colors, /*parallel_inner=*/false, nullptr, /*keep_tables=*/true);

  std::vector<Embedding> out;
  // An occurrence (non-induced copy) is a concrete subgraph: the same
  // vertex set can host several copies with different edges, and each
  // copy is produced once per automorphism of the template.  Dedup
  // therefore keys on the *mapped edge set*.
  std::set<std::vector<std::pair<VertexId, VertexId>>> seen_copies;
  const int root = partition.root_node();
  const Table* root_table = engine.table(root);
  if (root_table == nullptr) return out;

  Walker walker(engine, tmpl, colors);
  std::vector<VertexId> scratch(static_cast<std::size_t>(tmpl.size()), -1);
  auto sink = [&](const std::vector<VertexId>& vertices) {
    if (dedup_sets) {
      std::vector<std::pair<VertexId, VertexId>> copy_edges;
      for (auto [a, b] : tmpl.edges()) {
        VertexId u = vertices[static_cast<std::size_t>(a)];
        VertexId v = vertices[static_cast<std::size_t>(b)];
        copy_edges.emplace_back(std::min(u, v), std::max(u, v));
      }
      std::sort(copy_edges.begin(), copy_edges.end());
      if (!seen_copies.insert(std::move(copy_edges)).second) return true;
    }
    out.push_back(Embedding{vertices});
    return out.size() < limit;
  };

  bool keep_going = true;
  for (VertexId v = 0; v < graph.num_vertices() && keep_going; ++v) {
    if (!root_table->has_vertex(v)) continue;
    for (ColorsetIndex c = 0;
         c < root_table->num_colorsets() && keep_going; ++c) {
      if (root_table->get(v, c) == 0.0) continue;
      std::vector<Walker::Frame> work = {{root, v, c}};
      keep_going = walker.expand(work, scratch, sink);
    }
  }
  engine.release_all_tables();
  return out;
}

}  // namespace fascia
