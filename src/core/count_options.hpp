#pragma once
// Options and results for the FASCIA counter (Alg. 1 + 2).

#include <cstdint>
#include <string>
#include <vector>

#include "dp/count_table.hpp"
#include "graph/reorder.hpp"
#include "run/controls.hpp"
#include "treelet/partition.hpp"

namespace fascia {

/// §III-E: the paper's two multithreading modes plus the adaptive
/// layout.  Inner parallelizes the per-vertex loop of each DP pass
/// (best for large graphs); outer runs whole iterations concurrently
/// with private tables (best for small graphs, memory grows with
/// thread count); hybrid probes one iteration and splits the threads
/// into outer_copies x inner_threads by a cost model (table bytes x
/// measured frontier occupancy — core/thread_layout.hpp).
enum class ParallelMode {
  kSerial,
  kInnerLoop,
  kOuterLoop,
  kHybrid,
};

const char* parallel_mode_name(ParallelMode mode) noexcept;

/// How the thread pool is split: outer_copies engines each run whole
/// iterations with private tables, and each parallelizes its DP
/// stages over inner_threads.  The static modes are the corners:
/// outer = {threads, 1}, inner = {1, threads}, serial = {1, 1}.
struct ThreadLayout {
  int outer_copies = 1;
  int inner_threads = 1;
};

struct CountOptions {
  /// Iterations of (random coloring + DP); Alg. 1 line 2 gives the
  /// theoretical e^k·log(1/δ)/ε² bound, but "the number necessary in
  /// practice is far lower" (§III-A) — Fig. 10 shows <1 % error after 3.
  int iterations = 1;

  /// Colors to use; 0 means "template size" (the paper's choice).
  /// More colors raise the colorful probability at the cost of wider
  /// tables.
  int num_colors = 0;

  TableKind table = TableKind::kCompact;
  PartitionStrategy partition = PartitionStrategy::kOneAtATime;

  /// Share DP tables between rooted-isomorphic subtemplates (§III-C).
  bool share_tables = true;

  ParallelMode mode = ParallelMode::kInnerLoop;

  /// OpenMP threads; 0 = runtime default.
  int num_threads = 0;

  /// Locality pass applied to the graph before counting (graph/
  /// reorder.hpp).  Estimates are bit-identical under any mode —
  /// colorings are keyed on original vertex ids — and all reported
  /// per-vertex outputs stay keyed by original ids.  Deliberately
  /// excluded from checkpoint fingerprints: a run may resume under a
  /// different reorder mode.  Honored by count_template,
  /// graphlet_degrees, and the extraction routines; count_triangles
  /// and non-tree count_mixed_template ignore it.
  ReorderMode reorder = ReorderMode::kNone;

  /// Hybrid mode only: force this many outer engine copies instead of
  /// letting the cost model choose (0 = model decides).  Clamped to
  /// [1, threads]; inner_threads become threads / outer_copies.
  int outer_copies = 0;

  std::uint64_t seed = 1;

  /// Template root override (-1 = strategy default).  Graphlet-degree
  /// runs must root the template at the orbit vertex.
  int root = -1;

  /// Collect per-vertex rooted counts (graphlet degrees at the orbit
  /// of the root), averaged across iterations.
  bool per_vertex = false;

  /// Route count_all_treelets through the sched batch engine
  /// (sched::run_batch): every template of the profile shares one
  /// coloring per iteration and deduplicated subtemplate stages are
  /// computed once per coloring instead of once per template.
  /// Estimates stay unbiased but differ numerically from the legacy
  /// loop, which decorrelates templates with per-template seeds.
  bool batch_engine = false;

  /// Run the pre-frontier scalar DP kernels instead of the vectorized
  /// frontier/SoA path (DESIGN.md §8).  Estimates are identical either
  /// way; the flag exists for bit-identity tests and kernel
  /// benchmarking, so it is deliberately excluded from checkpoint
  /// fingerprints.
  bool reference_kernels = false;

  /// Resilience controls (deadline, memory budget, cancellation,
  /// checkpoint/resume).  Inert by default; see run/controls.hpp.
  RunControls run;
};

struct CountResult {
  /// Mean of the per-iteration unbiased estimates (Alg. 1 line 7).
  double estimate = 0.0;

  /// Unbiased estimate from each iteration.
  std::vector<double> per_iteration;

  /// Graphlet degree of every vertex at the orbit of the template
  /// root, averaged over iterations (filled when
  /// CountOptions::per_vertex).
  std::vector<double> vertex_counts;

  // ---- instrumentation --------------------------------------------------
  double seconds_total = 0.0;
  std::vector<double> seconds_per_iteration;
  std::size_t peak_table_bytes = 0;

  // ---- algorithm constants (for reporting / verification) ---------------
  double colorful_probability = 0.0;  ///< P in Alg. 2 line 21
  std::uint64_t automorphisms = 0;    ///< alpha in Alg. 2 line 22
  std::uint64_t root_stabilizer = 0;  ///< |Aut| / |orbit(root)|
  double dp_cost = 0.0;               ///< Σ C(k,Sn)·C(Sn,an) (§III-D)
  int max_live_tables = 0;
  int num_subtemplates = 0;

  /// Thread split the run executed with (hybrid: cost-model choice;
  /// static modes: the corresponding corner).
  ThreadLayout layout;

  /// Locality-pass instrumentation (zero when reorder == kNone):
  /// bandwidth proxy before/after and the pass's wall time.
  double reorder_gap_before = 0.0;
  double reorder_gap_after = 0.0;
  double reorder_seconds = 0.0;

  /// Estimate after the first i+1 iterations (prefix means) — the
  /// error-vs-iterations curves of Figs. 10-11 read these.
  [[nodiscard]] std::vector<double> running_estimates() const;

  /// What the resilient run layer did: final status, completed
  /// iteration prefix, degradations, checkpoint activity.  For a run
  /// with inert RunControls this is kCompleted with completed ==
  /// requested iterations.
  RunReport run;
};

}  // namespace fascia
