#pragma once
// Options and results for the FASCIA counter (Alg. 1 + 2).
//
// CountOptions groups its knobs into three sub-structs —
// SamplingOptions (how many samples, how biased), ExecutionOptions
// (how the DP runs), ObservabilityOptions (what gets recorded) — plus
// the RunControls resilience block.  The pre-grouping flat field
// spellings (`options.iterations`, `options.table`, ...) completed
// their one-release deprecation window and are gone; docs/API.md keeps
// the migration table.  Prefer the fluent builder:
//
//   auto options = CountOptions::builder()
//                      .iterations(16).threads(8)
//                      .mode(ParallelMode::kHybrid).outer_copies(2)
//                      .build();   // build() validates
//
// validate() rejects incoherent combinations (outer_copies without
// kHybrid, resume without a checkpoint path, ...) with the structured
// Error taxonomy (util/error.hpp, kind kUsage) instead of silently
// clamping.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dp/count_table.hpp"
#include "graph/reorder.hpp"
#include "run/controls.hpp"
#include "treelet/partition.hpp"

namespace fascia {

/// §III-E: the paper's two multithreading modes plus the adaptive
/// layout.  Inner parallelizes the per-vertex loop of each DP pass
/// (best for large graphs); outer runs whole iterations concurrently
/// with private tables (best for small graphs, memory grows with
/// thread count); hybrid probes one iteration and splits the threads
/// into outer_copies x inner_threads by a cost model (table bytes x
/// measured frontier occupancy — core/thread_layout.hpp).
enum class ParallelMode {
  kSerial,
  kInnerLoop,
  kOuterLoop,
  kHybrid,
};

const char* parallel_mode_name(ParallelMode mode) noexcept;

/// Which kernel family executes the non-leaf DP stages.  Both families
/// walk the same sparse vertex frontiers and produce bit-identical
/// tables (all DP values are exact integer counts in doubles), so the
/// choice is purely a performance knob:
///   * kFrontier — the PR 3 gather/scatter kernels: per-vertex neighbor
///     walks reading child-table rows in place (row borrowing, split
///     SoA scatter, cost-gated neighbor folding).
///   * kSpmm — the linear-algebra backend (core/spmm_kernels.hpp): each
///     stage first exports the passive child's table as a
///     column-blocked dense multivector over its frontier, then runs a
///     masked CSR SpMM restricted to the stage's frontier and folds the
///     product back through the split tables.  Decouples table storage
///     from kernel iteration order; stages where the export cannot pay
///     for itself fall back to the frontier kernels per stage.
enum class KernelFamily {
  kFrontier,
  kSpmm,
};

const char* kernel_family_name(KernelFamily family) noexcept;

/// How the thread pool is split: outer_copies engines each run whole
/// iterations with private tables, and each parallelizes its DP
/// stages over inner_threads.  The static modes are the corners:
/// outer = {threads, 1}, inner = {1, threads}, serial = {1, 1}.
struct ThreadLayout {
  int outer_copies = 1;
  int inner_threads = 1;
};

/// How many samples to draw and how they are colored.
struct SamplingOptions {
  /// Iterations of (random coloring + DP); Alg. 1 line 2 gives the
  /// theoretical e^k·log(1/δ)/ε² bound, but "the number necessary in
  /// practice is far lower" (§III-A) — Fig. 10 shows <1 % error after 3.
  int iterations = 1;

  /// Colors to use; 0 means "template size" (the paper's choice).
  /// More colors raise the colorful probability at the cost of wider
  /// tables.
  int num_colors = 0;

  /// Counter-mode RNG seed: iteration i's coloring depends only on
  /// (seed, i), which is what makes checkpoint/resume bit-identical.
  std::uint64_t seed = 1;
};

/// How the dynamic program executes: table layout, partition, thread
/// scheduling, locality.
struct ExecutionOptions {
  TableKind table = TableKind::kCompact;
  PartitionStrategy partition = PartitionStrategy::kOneAtATime;

  /// Share DP tables between rooted-isomorphic subtemplates (§III-C).
  bool share_tables = true;

  ParallelMode mode = ParallelMode::kInnerLoop;

  /// OpenMP threads; 0 = runtime default.
  int threads = 0;

  /// Locality pass applied to the graph before counting (graph/
  /// reorder.hpp).  Estimates are bit-identical under any mode —
  /// colorings are keyed on original vertex ids — and all reported
  /// per-vertex outputs stay keyed by original ids.  Deliberately
  /// excluded from checkpoint fingerprints: a run may resume under a
  /// different reorder mode.  Honored by count_template,
  /// graphlet_degrees, and the extraction routines; count_triangles
  /// and non-tree count_mixed_template reject a non-default value
  /// with a usage error (they never reorder — see validate()).
  ReorderMode reorder = ReorderMode::kNone;

  /// Hybrid mode only: force this many outer engine copies instead of
  /// letting the cost model choose (0 = model decides).  validate()
  /// rejects a nonzero value under any other mode, and values outside
  /// [1, threads] when threads is pinned.
  int outer_copies = 0;

  /// Route count_all_treelets through the sched batch engine
  /// (sched::run_batch): every template of the profile shares one
  /// coloring per iteration and deduplicated subtemplate stages are
  /// computed once per coloring instead of once per template.
  /// Estimates stay unbiased but differ numerically from the legacy
  /// loop, which decorrelates templates with per-template seeds.
  bool batch_engine = false;

  /// Run the pre-frontier scalar DP kernels instead of the vectorized
  /// frontier/SoA path (DESIGN.md §8).  Estimates are identical either
  /// way; the flag exists for bit-identity tests and kernel
  /// benchmarking, so it is deliberately excluded from checkpoint
  /// fingerprints.
  bool reference_kernels = false;

  /// Kernel family for the non-leaf DP stages (DESIGN.md §13).
  /// Bit-identical to the frontier family and to reference_kernels;
  /// like reorder and reference_kernels it is excluded from checkpoint
  /// fingerprints, so a run may resume under a different family.
  /// validate() rejects combining kSpmm with reference_kernels (the
  /// reference path predates frontiers and has no SpMM form).
  KernelFamily kernel_family = KernelFamily::kFrontier;

  /// Retain per-iteration DP state for incremental recounting after
  /// graph deltas (core/incremental.hpp: begin_incremental /
  /// RunHandle::recount).  Memory grows to iterations x the non-leaf
  /// table set, so it is opt-in.  validate() rejects it combined with
  /// reference_kernels, kOuterLoop/kHybrid modes, a reorder pass, or
  /// any armed RunControls — the retained state must be a plain
  /// inner-parallel pass keyed on original vertex ids.
  /// count_template refuses the flag (use begin_incremental).
  bool incremental = false;
};

/// What the run records about itself (DESIGN.md §10).  Metrics and
/// trace spans are additionally gated on the process-global switch
/// (FASCIA_OBS=1 or obs::set_enabled) so release binaries pay one
/// predictable branch when everything is off.
struct ObservabilityOptions {
  /// Force the global observability switch on for the duration of
  /// this run (equivalent to FASCIA_OBS=1).
  bool enabled = false;

  /// Collect per-DP-stage detail (kernel kind, candidates, survivors,
  /// MACs, wall time) into the result's RunReport.  On by default;
  /// stage collection only happens when observability is on, so the
  /// off path stays free.
  bool collect_stages = true;

  /// Free-form label stamped into the RunReport ("nightly-k7", ...).
  std::string label;
};

struct CountOptions {
  SamplingOptions sampling;
  ExecutionOptions execution;
  ObservabilityOptions observability;

  /// Resilience controls (deadline, memory budget, cancellation,
  /// checkpoint/resume).  Inert by default; see run/controls.hpp.
  /// Prefer builder().checkpoint(path) / .resume_from(path) over
  /// poking the fields directly.
  RunControls run;

  /// Template root override (-1 = strategy default).  Graphlet-degree
  /// runs root the template at the orbit vertex.
  int root = -1;

  /// Collect per-vertex rooted counts (graphlet degrees at the orbit
  /// of the root), averaged across iterations.
  bool per_vertex = false;

  /// Rejects incoherent combinations with Error(kUsage):
  /// outer_copies without kHybrid (or out of range), negative thread
  /// counts, resume without a checkpoint path, a checkpoint path with
  /// a non-positive interval.  Called by every entry point and by
  /// builder().build().
  void validate() const;

  class Builder;
  [[nodiscard]] static Builder builder();
};

/// Fluent construction; build() validates.  Setter order is free.
class CountOptions::Builder {
 public:
  Builder& iterations(int n) {
    opts_.sampling.iterations = n;
    return *this;
  }
  Builder& colors(int n) {
    opts_.sampling.num_colors = n;
    return *this;
  }
  Builder& seed(std::uint64_t s) {
    opts_.sampling.seed = s;
    return *this;
  }
  Builder& table(TableKind kind) {
    opts_.execution.table = kind;
    return *this;
  }
  Builder& partition(PartitionStrategy strategy) {
    opts_.execution.partition = strategy;
    return *this;
  }
  Builder& share_tables(bool on) {
    opts_.execution.share_tables = on;
    return *this;
  }
  Builder& mode(ParallelMode m) {
    opts_.execution.mode = m;
    return *this;
  }
  Builder& threads(int n) {
    opts_.execution.threads = n;
    return *this;
  }
  Builder& reorder(ReorderMode m) {
    opts_.execution.reorder = m;
    return *this;
  }
  Builder& outer_copies(int n) {
    opts_.execution.outer_copies = n;
    return *this;
  }
  Builder& batch_engine(bool on) {
    opts_.execution.batch_engine = on;
    return *this;
  }
  Builder& reference_kernels(bool on) {
    opts_.execution.reference_kernels = on;
    return *this;
  }
  Builder& kernel_family(KernelFamily family) {
    opts_.execution.kernel_family = family;
    return *this;
  }
  Builder& incremental(bool on) {
    opts_.execution.incremental = on;
    return *this;
  }
  Builder& root(int vertex) {
    opts_.root = vertex;
    return *this;
  }
  Builder& per_vertex(bool on) {
    opts_.per_vertex = on;
    return *this;
  }
  Builder& deadline(double seconds) {
    opts_.run.deadline_seconds = seconds;
    return *this;
  }
  Builder& memory_budget(std::size_t bytes) {
    opts_.run.memory_budget_bytes = bytes;
    return *this;
  }
  /// Directory for out-of-core table pages — arms the memory ladder's
  /// last rung (run/controls.hpp: RunControls::spill_dir).  Only
  /// engages together with memory_budget().
  Builder& spill(std::string dir) {
    opts_.run.spill_dir = std::move(dir);
    return *this;
  }
  Builder& cancel_flag(const std::atomic<bool>* flag) {
    opts_.run.cancel = flag;
    return *this;
  }
  /// Write checkpoints to `path` every `every` completed iterations.
  Builder& checkpoint(std::string path, int every = 16) {
    opts_.run.checkpoint_path = std::move(path);
    opts_.run.checkpoint_every = every;
    return *this;
  }
  /// Resume from `path` when it holds a matching checkpoint (and keep
  /// checkpointing there) — the one-stop replacement for the old
  /// "set checkpoint_path + resume" pair.
  Builder& resume_from(std::string path) {
    opts_.run.checkpoint_path = std::move(path);
    opts_.run.resume = true;
    return *this;
  }
  Builder& observability(bool on) {
    opts_.observability.enabled = on;
    return *this;
  }
  Builder& collect_stages(bool on) {
    opts_.observability.collect_stages = on;
    return *this;
  }
  Builder& label(std::string text) {
    opts_.observability.label = std::move(text);
    return *this;
  }

  /// Validates (Error, kind kUsage on incoherent combinations) and
  /// returns the finished options.
  [[nodiscard]] CountOptions build() const {
    opts_.validate();
    return opts_;
  }

 private:
  CountOptions opts_;
};

inline CountOptions::Builder CountOptions::builder() { return Builder(); }

/// Reject a reorder request on an entry point that never reorders
/// (count_triangles, non-tree count_mixed_template) with Error(kUsage).
void reject_unsupported_reorder(const CountOptions& options, const char* api);

struct CountResult : RunOutcome {
  // RunOutcome provides: estimate, relative_stderr, run (RunReport),
  // report (obs::RunReport), status(), ok().

  /// Unbiased estimate from each iteration.
  std::vector<double> per_iteration;

  /// Graphlet degree of every vertex at the orbit of the template
  /// root, averaged over iterations (filled when
  /// CountOptions::per_vertex).
  std::vector<double> vertex_counts;

  // ---- instrumentation --------------------------------------------------
  double seconds_total = 0.0;
  std::vector<double> seconds_per_iteration;
  std::size_t peak_table_bytes = 0;

  // ---- algorithm constants (for reporting / verification) ---------------
  double colorful_probability = 0.0;  ///< P in Alg. 2 line 21
  std::uint64_t automorphisms = 0;    ///< alpha in Alg. 2 line 22
  std::uint64_t root_stabilizer = 0;  ///< |Aut| / |orbit(root)|
  double dp_cost = 0.0;               ///< Σ C(k,Sn)·C(Sn,an) (§III-D)
  int max_live_tables = 0;
  int num_subtemplates = 0;

  /// Thread split the run executed with (hybrid: cost-model choice;
  /// static modes: the corresponding corner).
  ThreadLayout layout;

  /// Locality-pass instrumentation (zero when reorder == kNone):
  /// bandwidth proxy before/after and the pass's wall time.
  double reorder_gap_before = 0.0;
  double reorder_gap_after = 0.0;
  double reorder_seconds = 0.0;

  /// Incremental-recount accounting (all zero outside the delta path —
  /// core/incremental.hpp fills it on every RunHandle::recount).
  struct DeltaStats {
    std::uint64_t applied_edges = 0;    ///< insertions + deletions
    std::uint64_t dirty_vertices = 0;   ///< outermost-ball size
    double dirty_fraction = 0.0;        ///< dirty_vertices / n
    std::uint64_t stages_recomputed = 0;  ///< non-leaf passes, all iters
    std::uint64_t rows_recomputed = 0;
    std::uint64_t rows_copied = 0;      ///< clean rows spliced verbatim
  };
  DeltaStats delta;

  /// Estimate after the first i+1 iterations (prefix means) — the
  /// error-vs-iterations curves of Figs. 10-11 read these.
  [[nodiscard]] std::vector<double> running_estimates() const;
};

}  // namespace fascia
