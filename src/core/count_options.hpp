#pragma once
// Options and results for the FASCIA counter (Alg. 1 + 2).

#include <cstdint>
#include <string>
#include <vector>

#include "dp/count_table.hpp"
#include "run/controls.hpp"
#include "treelet/partition.hpp"

namespace fascia {

/// §III-E: two multithreading modes.  Inner parallelizes the
/// per-vertex loop of each DP pass (best for large graphs); outer runs
/// whole iterations concurrently with private tables (best for small
/// graphs, memory grows with thread count).
enum class ParallelMode {
  kSerial,
  kInnerLoop,
  kOuterLoop,
};

const char* parallel_mode_name(ParallelMode mode) noexcept;

struct CountOptions {
  /// Iterations of (random coloring + DP); Alg. 1 line 2 gives the
  /// theoretical e^k·log(1/δ)/ε² bound, but "the number necessary in
  /// practice is far lower" (§III-A) — Fig. 10 shows <1 % error after 3.
  int iterations = 1;

  /// Colors to use; 0 means "template size" (the paper's choice).
  /// More colors raise the colorful probability at the cost of wider
  /// tables.
  int num_colors = 0;

  TableKind table = TableKind::kCompact;
  PartitionStrategy partition = PartitionStrategy::kOneAtATime;

  /// Share DP tables between rooted-isomorphic subtemplates (§III-C).
  bool share_tables = true;

  ParallelMode mode = ParallelMode::kInnerLoop;

  /// OpenMP threads; 0 = runtime default.
  int num_threads = 0;

  std::uint64_t seed = 1;

  /// Template root override (-1 = strategy default).  Graphlet-degree
  /// runs must root the template at the orbit vertex.
  int root = -1;

  /// Collect per-vertex rooted counts (graphlet degrees at the orbit
  /// of the root), averaged across iterations.
  bool per_vertex = false;

  /// Route count_all_treelets through the sched batch engine
  /// (sched::run_batch): every template of the profile shares one
  /// coloring per iteration and deduplicated subtemplate stages are
  /// computed once per coloring instead of once per template.
  /// Estimates stay unbiased but differ numerically from the legacy
  /// loop, which decorrelates templates with per-template seeds.
  bool batch_engine = false;

  /// Run the pre-frontier scalar DP kernels instead of the vectorized
  /// frontier/SoA path (DESIGN.md §8).  Estimates are identical either
  /// way; the flag exists for bit-identity tests and kernel
  /// benchmarking, so it is deliberately excluded from checkpoint
  /// fingerprints.
  bool reference_kernels = false;

  /// Resilience controls (deadline, memory budget, cancellation,
  /// checkpoint/resume).  Inert by default; see run/controls.hpp.
  RunControls run;
};

struct CountResult {
  /// Mean of the per-iteration unbiased estimates (Alg. 1 line 7).
  double estimate = 0.0;

  /// Unbiased estimate from each iteration.
  std::vector<double> per_iteration;

  /// Graphlet degree of every vertex at the orbit of the template
  /// root, averaged over iterations (filled when
  /// CountOptions::per_vertex).
  std::vector<double> vertex_counts;

  // ---- instrumentation --------------------------------------------------
  double seconds_total = 0.0;
  std::vector<double> seconds_per_iteration;
  std::size_t peak_table_bytes = 0;

  // ---- algorithm constants (for reporting / verification) ---------------
  double colorful_probability = 0.0;  ///< P in Alg. 2 line 21
  std::uint64_t automorphisms = 0;    ///< alpha in Alg. 2 line 22
  std::uint64_t root_stabilizer = 0;  ///< |Aut| / |orbit(root)|
  double dp_cost = 0.0;               ///< Σ C(k,Sn)·C(Sn,an) (§III-D)
  int max_live_tables = 0;
  int num_subtemplates = 0;

  /// Estimate after the first i+1 iterations (prefix means) — the
  /// error-vs-iterations curves of Figs. 10-11 read these.
  [[nodiscard]] std::vector<double> running_estimates() const;

  /// What the resilient run layer did: final status, completed
  /// iteration prefix, degradations, checkpoint activity.  For a run
  /// with inert RunControls this is kCompleted with completed ==
  /// requested iterations.
  RunReport run;
};

}  // namespace fascia
