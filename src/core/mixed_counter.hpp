#pragma once
// Counting API for mixed (edge + triangle block) templates — the
// paper's "tree-like graph templates with triangles".
//
// Pure trees are delegated to the faster tree pipeline
// (core/counter.hpp); templates with triangle blocks run through the
// MixedDpEngine.  Estimates are unbiased exactly as for trees:
//   final = colorful_maps / (P · |Aut|),
// with |Aut| from pruned permutation search (mixed_automorphisms).

#include "core/count_options.hpp"
#include "graph/graph.hpp"
#include "treelet/mixed_template.hpp"

namespace fascia {

/// Approximate count of non-induced occurrences of `tmpl`.
/// Options honored: iterations, num_colors, table, mode (serial /
/// inner / outer), num_threads, seed, root.  Tree-only options
/// (partition strategy, share_tables, per_vertex) apply only when the
/// template is a tree and is delegated.
CountResult count_mixed_template(const Graph& graph,
                                 const MixedTemplate& tmpl,
                                 const CountOptions& options = {});

}  // namespace fascia
