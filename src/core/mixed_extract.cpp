#include "core/mixed_extract.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <tuple>

#include "core/coloring.hpp"
#include "core/mixed_engine.hpp"
#include "dp/table_compact.hpp"
#include "treelet/mixed_partition.hpp"
#include "util/rng.hpp"

namespace fascia {

namespace {

using Table = CompactTable;

/// Walks a completed keep-tables... the mixed engine frees tables
/// eagerly, so this walker re-runs the DP keeping references itself:
/// it owns the engine pass and reads child values through the same
/// inline-leaf convention as the engine.
class MixedWalker {
 public:
  MixedWalker(const Graph& graph, const MixedTemplate& tmpl,
              const MixedPartition& partition, int k,
              const std::vector<std::uint8_t>& colors)
      : graph_(graph), tmpl_(tmpl), partition_(partition), k_(k),
        colors_(colors) {
    // Recompute all node tables and keep every one alive: extraction
    // needs random access to the full DAG.
    tables_.resize(static_cast<std::size_t>(partition_.num_nodes()));
    for (int i = 0; i < partition_.num_nodes(); ++i) {
      const MixedSubtemplate& node = partition_.node(i);
      if (node.is_leaf()) continue;
      compute(i);
    }
  }

  /// Total over the root table (0 when the template cannot embed
  /// colorfully under this coloring).
  [[nodiscard]] double total() const {
    const int root = partition_.root_node();
    if (partition_.node(root).is_leaf()) {
      return static_cast<double>(graph_.num_vertices());
    }
    return tables_[static_cast<std::size_t>(root)]->total();
  }

  /// Samples one embedding; requires total() > 0.
  Embedding sample(Xoshiro256& rng) {
    Embedding embedding;
    embedding.vertices.assign(static_cast<std::size_t>(tmpl_.size()), -1);
    const int root = partition_.root_node();
    const Table& table = *tables_[static_cast<std::size_t>(root)];

    // Vertex, then colorset within the vertex, proportional to counts.
    double pick = rng.uniform() * table.total();
    VertexId v = 0;
    for (; v < graph_.num_vertices(); ++v) {
      const double weight = table.vertex_total(v);
      if (pick < weight) break;
      pick -= weight;
    }
    if (v >= graph_.num_vertices()) v = graph_.num_vertices() - 1;
    double pick_set = rng.uniform() * table.vertex_total(v);
    ColorsetIndex cset = 0;
    for (ColorsetIndex c = 0; c < table.num_colorsets(); ++c) {
      const double weight = table.get(v, c);
      if (pick_set < weight) {
        cset = c;
        break;
      }
      pick_set -= weight;
    }
    descend(root, v, cset, embedding.vertices, rng);
    return embedding;
  }

 private:
  double value(int index, VertexId v, ColorsetIndex cset) const {
    const MixedSubtemplate& node = partition_.node(index);
    if (node.is_leaf()) {
      if (cset != static_cast<ColorsetIndex>(
                      colors_[static_cast<std::size_t>(v)])) {
        return 0.0;
      }
      if (tmpl_.has_labels() && graph_.has_labels() &&
          tmpl_.label(node.root) != graph_.label(v)) {
        return 0.0;
      }
      return 1.0;
    }
    return tables_[static_cast<std::size_t>(index)]->get(v, cset);
  }

  void compute(int index) {
    // Reuse the engine's kernels by running a single-node pass: the
    // MixedDpEngine frees child tables per schedule, which we do not
    // want here, so the walker re-implements the two joins compactly
    // (extraction is cold; clarity over speed).
    const MixedSubtemplate& node = partition_.node(index);
    const int h = node.size();
    const int a = partition_.node(node.active).size();
    const auto num_sets = num_colorsets(k_, h);
    auto table = std::make_unique<Table>(graph_.num_vertices(), num_sets);
    const SplitTable split1(k_, h, a);

    std::vector<double> row(num_sets);
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      std::fill(row.begin(), row.end(), 0.0);
      bool any = false;
      if (node.kind == MixedSubtemplate::Kind::kEdgeJoin) {
        for (ColorsetIndex parent = 0; parent < num_sets; ++parent) {
          const auto act = split1.active_indices(parent);
          const auto pas = split1.passive_indices(parent);
          for (std::size_t s = 0; s < act.size(); ++s) {
            const double ca = value(node.active, v, act[s]);
            if (ca == 0.0) continue;
            for (VertexId u : graph_.neighbors(v)) {
              const double cp = value(node.passive, u, pas[s]);
              if (cp != 0.0) {
                row[parent] += ca * cp;
                any = true;
              }
            }
          }
        }
      } else {
        const int rest_size = h - a;
        const int sx = partition_.node(node.passive).size();
        const SplitTable split2(k_, rest_size, sx);
        for (ColorsetIndex parent = 0; parent < num_sets; ++parent) {
          const auto act = split1.active_indices(parent);
          const auto rest = split1.passive_indices(parent);
          for (std::size_t s1 = 0; s1 < act.size(); ++s1) {
            const double ca = value(node.active, v, act[s1]);
            if (ca == 0.0) continue;
            const auto cx = split2.active_indices(rest[s1]);
            const auto cy = split2.passive_indices(rest[s1]);
            for (auto [u, w] : adjacent_pairs(v)) {
              for (std::size_t s2 = 0; s2 < cx.size(); ++s2) {
                const double x_val = value(node.passive, u, cx[s2]);
                if (x_val == 0.0) continue;
                const double y_val = value(node.passive2, w, cy[s2]);
                if (y_val != 0.0) {
                  row[parent] += ca * x_val * y_val;
                  any = true;
                }
              }
            }
          }
        }
      }
      if (any) table->commit_row(v, row);
    }
    tables_[static_cast<std::size_t>(index)] = std::move(table);
  }

  /// Ordered pairs (u, w) of mutually adjacent neighbors of v.
  [[nodiscard]] std::vector<std::pair<VertexId, VertexId>> adjacent_pairs(
      VertexId v) const {
    std::vector<std::pair<VertexId, VertexId>> pairs;
    const auto nbrs = graph_.neighbors(v);
    for (VertexId u : nbrs) {
      const auto nbrs_u = graph_.neighbors(u);
      std::set_intersection(nbrs.begin(), nbrs.end(), nbrs_u.begin(),
                            nbrs_u.end(),
                            std::back_inserter(pairs_scratch_));
      for (VertexId w : pairs_scratch_) pairs.emplace_back(u, w);
      pairs_scratch_.clear();
    }
    return pairs;
  }

  void descend(int index, VertexId v, ColorsetIndex cset,
               std::vector<VertexId>& out, Xoshiro256& rng) {
    const MixedSubtemplate& node = partition_.node(index);
    if (node.is_leaf()) {
      out[static_cast<std::size_t>(node.root)] = v;
      return;
    }
    const int h = node.size();
    const int a = partition_.node(node.active).size();
    const SplitTable split1(k_, h, a);
    const auto act = split1.active_indices(cset);
    const auto rest = split1.passive_indices(cset);

    if (node.kind == MixedSubtemplate::Kind::kEdgeJoin) {
      std::vector<std::tuple<VertexId, ColorsetIndex, ColorsetIndex>> choices;
      std::vector<double> weights;
      for (std::size_t s = 0; s < act.size(); ++s) {
        const double ca = value(node.active, v, act[s]);
        if (ca == 0.0) continue;
        for (VertexId u : graph_.neighbors(v)) {
          const double cp = value(node.passive, u, rest[s]);
          if (cp != 0.0) {
            choices.emplace_back(u, act[s], rest[s]);
            weights.push_back(ca * cp);
          }
        }
      }
      const std::size_t chosen = pick(weights, rng);
      const auto [u, ca_idx, cp_idx] = choices[chosen];
      descend(node.active, v, ca_idx, out, rng);
      descend(node.passive, u, cp_idx, out, rng);
      return;
    }

    // Triangle join.
    const int rest_size = h - a;
    const int sx = partition_.node(node.passive).size();
    const SplitTable split2(k_, rest_size, sx);
    struct Choice {
      VertexId u, w;
      ColorsetIndex ca, cx, cy;
    };
    std::vector<Choice> choices;
    std::vector<double> weights;
    for (std::size_t s1 = 0; s1 < act.size(); ++s1) {
      const double ca = value(node.active, v, act[s1]);
      if (ca == 0.0) continue;
      const auto cx = split2.active_indices(rest[s1]);
      const auto cy = split2.passive_indices(rest[s1]);
      for (auto [u, w] : adjacent_pairs(v)) {
        for (std::size_t s2 = 0; s2 < cx.size(); ++s2) {
          const double x_val = value(node.passive, u, cx[s2]);
          if (x_val == 0.0) continue;
          const double y_val = value(node.passive2, w, cy[s2]);
          if (y_val == 0.0) continue;
          choices.push_back({u, w, act[s1], cx[s2], cy[s2]});
          weights.push_back(ca * x_val * y_val);
        }
      }
    }
    const Choice& choice = choices[pick(weights, rng)];
    descend(node.active, v, choice.ca, out, rng);
    descend(node.passive, choice.u, choice.cx, out, rng);
    descend(node.passive2, choice.w, choice.cy, out, rng);
  }

  static std::size_t pick(const std::vector<double>& weights,
                          Xoshiro256& rng) {
    if (weights.empty()) {
      throw std::logic_error("MixedWalker: inconsistent DP tables");
    }
    double total = 0.0;
    for (double w : weights) total += w;
    double roll = rng.uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (roll < weights[i]) return i;
      roll -= weights[i];
    }
    return weights.size() - 1;
  }

  const Graph& graph_;
  const MixedTemplate& tmpl_;
  const MixedPartition& partition_;
  int k_;
  const std::vector<std::uint8_t>& colors_;
  std::vector<std::unique_ptr<Table>> tables_;
  mutable std::vector<VertexId> pairs_scratch_;
};

}  // namespace

bool is_valid_mixed_embedding(const Graph& graph, const MixedTemplate& tmpl,
                              const Embedding& embedding) {
  if (static_cast<int>(embedding.vertices.size()) != tmpl.size()) return false;
  std::set<VertexId> distinct(embedding.vertices.begin(),
                              embedding.vertices.end());
  if (static_cast<int>(distinct.size()) != tmpl.size()) return false;
  for (VertexId v : embedding.vertices) {
    if (v < 0 || v >= graph.num_vertices()) return false;
  }
  for (auto [a, b] : tmpl.edges()) {
    if (!graph.has_edge(embedding.vertices[static_cast<std::size_t>(a)],
                        embedding.vertices[static_cast<std::size_t>(b)])) {
      return false;
    }
  }
  if (tmpl.has_labels() && graph.has_labels()) {
    for (int tv = 0; tv < tmpl.size(); ++tv) {
      if (tmpl.label(tv) !=
          graph.label(embedding.vertices[static_cast<std::size_t>(tv)])) {
        return false;
      }
    }
  }
  return true;
}

std::vector<Embedding> sample_mixed_embeddings(const Graph& graph,
                                               const MixedTemplate& tmpl,
                                               std::size_t how_many,
                                               const CountOptions& options,
                                               int max_coloring_attempts) {
  if (tmpl.is_tree()) {
    return sample_embeddings(graph, tmpl.as_tree(), how_many, options,
                             max_coloring_attempts);
  }
  const int k = options.sampling.num_colors > 0 ? options.sampling.num_colors : tmpl.size();
  const MixedPartition partition =
      partition_mixed_template(tmpl, options.root);
  Xoshiro256 rng(options.sampling.seed ^ 0x5bd1e995);

  std::vector<Embedding> out;
  for (int attempt = 0;
       attempt < max_coloring_attempts && out.size() < how_many; ++attempt) {
    const auto colors = detail::random_coloring(
        graph, k, options.sampling.seed + static_cast<std::uint64_t>(attempt));
    MixedWalker walker(graph, tmpl, partition, k, colors);
    if (walker.total() <= 0.0) continue;
    const std::size_t batch =
        std::max<std::size_t>(1, (how_many - out.size() + 3) / 4);
    for (std::size_t draw = 0; draw < batch && out.size() < how_many;
         ++draw) {
      out.push_back(walker.sample(rng));
    }
  }
  return out;
}

}  // namespace fascia
