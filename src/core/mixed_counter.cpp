#include "core/mixed_counter.hpp"

#include <memory>
#include <stdexcept>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "comb/binomial.hpp"
#include "core/coloring.hpp"
#include "core/counter.hpp"
#include "core/mixed_engine.hpp"
#include "dp/table_compact.hpp"
#include "dp/table_hash.hpp"
#include "dp/table_naive.hpp"
#include "dp/table_succinct.hpp"
#include "obs/report.hpp"
#include "util/mem_tracker.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace fascia {

namespace {

using detail::iteration_seed;
using detail::random_coloring;

template <class Table>
CountResult run_mixed(const Graph& graph, const MixedTemplate& tmpl,
                      const CountOptions& options) {
  const int k = options.sampling.num_colors > 0 ? options.sampling.num_colors : tmpl.size();
  if (tmpl.has_labels() != graph.has_labels()) {
    throw std::invalid_argument(
        "count_mixed_template: template and graph must both be labeled or "
        "both unlabeled");
  }
  if (k < tmpl.size() || k > kMaxTemplateSize) {
    throw std::invalid_argument("count_mixed_template: bad color count");
  }
  if (options.sampling.iterations < 1) {
    throw std::invalid_argument("count_mixed_template: iterations >= 1");
  }
  if (options.per_vertex) {
    throw std::invalid_argument(
        "count_mixed_template: per-vertex counts are tree-only");
  }

  const MixedPartition partition =
      partition_mixed_template(tmpl, options.root);

  CountResult result;
  result.automorphisms = mixed_automorphisms(tmpl);
  result.colorful_probability = colorful_probability(k, tmpl.size());
  result.num_subtemplates = partition.num_nodes();
  const double scale =
      1.0 / (result.colorful_probability *
             static_cast<double>(result.automorphisms));

  const int iterations = options.sampling.iterations;
  result.per_iteration.assign(static_cast<std::size_t>(iterations), 0.0);
  result.seconds_per_iteration.assign(static_cast<std::size_t>(iterations),
                                      0.0);

  std::size_t peak_bytes = 0;
  WallTimer total_timer;
  {
    PeakMemScope peak_scope(peak_bytes);
    if (options.execution.mode == ParallelMode::kOuterLoop) {
#ifdef _OPENMP
#pragma omp parallel num_threads( \
    options.execution.threads > 0 ? options.execution.threads : omp_get_max_threads())
#endif
      {
        MixedDpEngine<Table> engine(graph, tmpl, partition, k);
#ifdef _OPENMP
#pragma omp for schedule(dynamic, 1)
#endif
        for (int iter = 0; iter < iterations; ++iter) {
          WallTimer timer;
          const auto colors =
              random_coloring(graph, k, iteration_seed(options.sampling.seed, iter));
          result.per_iteration[static_cast<std::size_t>(iter)] =
              engine.run(colors, /*parallel_inner=*/false) * scale;
          result.seconds_per_iteration[static_cast<std::size_t>(iter)] =
              timer.elapsed_s();
        }
      }
    } else {
      // The mixed engine has no hybrid scheduler; kHybrid degrades to
      // the inner sweep (its serial-corner layout).
      const bool inner = options.execution.mode == ParallelMode::kInnerLoop ||
                         options.execution.mode == ParallelMode::kHybrid;
#ifdef _OPENMP
      if (inner && options.execution.threads > 0) {
        omp_set_num_threads(options.execution.threads);
      }
#endif
      MixedDpEngine<Table> engine(graph, tmpl, partition, k);
      for (int iter = 0; iter < iterations; ++iter) {
        WallTimer timer;
        const auto colors =
            random_coloring(graph, k, iteration_seed(options.sampling.seed, iter));
        result.per_iteration[static_cast<std::size_t>(iter)] =
            engine.run(colors, inner) * scale;
        result.seconds_per_iteration[static_cast<std::size_t>(iter)] =
            timer.elapsed_s();
      }
    }
  }
  result.peak_table_bytes = peak_bytes;
  result.seconds_total = total_timer.elapsed_s();
  result.estimate = mean(result.per_iteration);
  result.relative_stderr = relative_mean_stderr(result.per_iteration);
  result.run.requested_iterations = iterations;
  result.run.completed_iterations = iterations;
  result.run.table_used = options.execution.table;

  auto report = std::make_shared<obs::RunReport>();
  report->kind = "count_mixed_template";
  report->label = options.observability.label;
  report->options = {
      {"sampling.iterations", std::to_string(iterations)},
      {"sampling.num_colors", std::to_string(k)},
      {"sampling.seed", std::to_string(options.sampling.seed)},
      {"execution.table", table_kind_name(options.execution.table)},
      {"execution.mode", parallel_mode_name(options.execution.mode)},
      {"execution.threads", std::to_string(options.execution.threads)},
  };
  report->graph.vertices = static_cast<std::int64_t>(graph.num_vertices());
  report->graph.edges = static_cast<std::int64_t>(graph.num_edges());
  report->graph.max_degree = static_cast<std::int64_t>(graph.max_degree());
  report->graph.labeled = graph.has_labels();
  report->tmpl.vertices = tmpl.size();
  report->tmpl.subtemplates = result.num_subtemplates;
  report->sampling.requested_iterations = iterations;
  report->sampling.completed_iterations = iterations;
  report->sampling.num_colors = k;
  report->sampling.seed = options.sampling.seed;
  report->sampling.estimate = result.estimate;
  report->sampling.relative_stderr = result.relative_stderr;
  report->sampling.colorful_probability = result.colorful_probability;
  report->sampling.automorphisms = result.automorphisms;
  report->sampling.trajectory = result.running_estimates();
  report->timing.total_seconds = result.seconds_total;
  report->timing.per_iteration_seconds = result.seconds_per_iteration;
  report->memory.observed_peak_bytes = peak_bytes;
  report->memory.table = table_kind_name(options.execution.table);
  report->run.status = run_status_name(result.run.status);
  result.report = std::move(report);
  return result;
}

}  // namespace

CountResult count_mixed_template(const Graph& graph,
                                 const MixedTemplate& tmpl,
                                 const CountOptions& options) {
  if (tmpl.is_tree()) {
    return count_template(graph, tmpl.as_tree(), options);
  }
  // The mixed DP has no reorder plumbing and would silently ignore the
  // request — reject instead (the tree path above does support it).
  reject_unsupported_reorder(options, "count_mixed_template (non-tree)");
  options.validate();
  switch (options.execution.table) {
    case TableKind::kNaive:
      return run_mixed<NaiveTable>(graph, tmpl, options);
    case TableKind::kCompact:
      return run_mixed<CompactTable>(graph, tmpl, options);
    case TableKind::kHash:
      return run_mixed<HashTable>(graph, tmpl, options);
    case TableKind::kSuccinct:
      return run_mixed<SuccinctTable>(graph, tmpl, options);
  }
  throw std::logic_error("count_mixed_template: bad TableKind");
}

}  // namespace fascia
