#include "core/count_options.hpp"

#include <string>

#include "util/error.hpp"

namespace fascia {

const char* parallel_mode_name(ParallelMode mode) noexcept {
  switch (mode) {
    case ParallelMode::kSerial:
      return "serial";
    case ParallelMode::kInnerLoop:
      return "inner";
    case ParallelMode::kOuterLoop:
      return "outer";
    case ParallelMode::kHybrid:
      return "hybrid";
  }
  return "?";
}

const char* kernel_family_name(KernelFamily family) noexcept {
  switch (family) {
    case KernelFamily::kFrontier:
      return "frontier";
    case KernelFamily::kSpmm:
      return "spmm";
  }
  return "?";
}

void CountOptions::validate() const {
  if (execution.threads < 0) {
    throw usage_error("execution.threads must be >= 0 (0 = runtime default), got " +
                      std::to_string(execution.threads));
  }
  if (execution.outer_copies < 0) {
    throw usage_error("execution.outer_copies must be >= 0 (0 = cost model), got " +
                      std::to_string(execution.outer_copies));
  }
  if (execution.outer_copies != 0 && execution.mode != ParallelMode::kHybrid) {
    throw usage_error(
        std::string("execution.outer_copies is a hybrid-mode knob; mode is ") +
        parallel_mode_name(execution.mode) +
        " (set mode=kHybrid or leave outer_copies at 0)");
  }
  if (execution.outer_copies != 0 && execution.threads > 0 &&
      execution.outer_copies > execution.threads) {
    throw usage_error("execution.outer_copies (" +
                      std::to_string(execution.outer_copies) +
                      ") exceeds execution.threads (" +
                      std::to_string(execution.threads) + ")");
  }
  if (execution.reference_kernels &&
      execution.kernel_family == KernelFamily::kSpmm) {
    throw usage_error(
        "execution.reference_kernels and KernelFamily::kSpmm are mutually "
        "exclusive (the reference path has no SpMM form; pick one)");
  }
  if (execution.incremental) {
    if (execution.reference_kernels) {
      throw usage_error(
          "execution.incremental requires the frontier/SpMM kernels; "
          "reference_kernels retain no frontiers to recount from");
    }
    if (execution.mode == ParallelMode::kOuterLoop ||
        execution.mode == ParallelMode::kHybrid) {
      throw usage_error(
          std::string("execution.incremental supports serial/inner "
                      "parallelism only; mode is ") +
          parallel_mode_name(execution.mode));
    }
    if (execution.reorder != ReorderMode::kNone) {
      throw usage_error(
          "execution.incremental and execution.reorder are mutually "
          "exclusive (retained tables are keyed on original vertex ids)");
    }
    if (run.deadline_seconds > 0.0 || run.memory_budget_bytes != 0 ||
        run.cancel != nullptr || !run.checkpoint_path.empty() ||
        !run.spill_dir.empty() || run.resume) {
      throw usage_error(
          "execution.incremental cannot combine with RunControls "
          "(deadline, memory budget, cancel, checkpoint/resume, spill): "
          "retained state must come from complete uninterrupted passes");
    }
  }
  if (run.resume && run.checkpoint_path.empty()) {
    throw usage_error(
        "run.resume requires run.checkpoint_path (use "
        "builder().resume_from(path))");
  }
  if (!run.checkpoint_path.empty() && run.checkpoint_every < 1) {
    throw usage_error("run.checkpoint_every must be >= 1, got " +
                      std::to_string(run.checkpoint_every));
  }
}

void reject_unsupported_reorder(const CountOptions& options, const char* api) {
  if (options.execution.reorder == ReorderMode::kNone) return;
  throw usage_error(std::string(api) +
                    " does not reorder the graph; set execution.reorder = "
                    "ReorderMode::kNone (it would be silently ignored)");
}

}  // namespace fascia
