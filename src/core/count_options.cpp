#include "core/count_options.hpp"

namespace fascia {

const char* parallel_mode_name(ParallelMode mode) noexcept {
  switch (mode) {
    case ParallelMode::kSerial:
      return "serial";
    case ParallelMode::kInnerLoop:
      return "inner";
    case ParallelMode::kOuterLoop:
      return "outer";
    case ParallelMode::kHybrid:
      return "hybrid";
  }
  return "?";
}

}  // namespace fascia
