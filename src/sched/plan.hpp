#pragma once
// Batch planner: merges every job's partition tree into one DP stage
// DAG with cross-template deduplication.
//
// Each template is partitioned with the existing single-edge-cut
// partitioner; nodes are then interned into a global stage list keyed
// by their rooted canonical form (treelet/canonical*), so a rooted
// subtemplate appearing in several templates becomes ONE stage whose
// table every consumer reads.  The merged node list is itself a valid
// PartitionTree (children precede parents; free_after lifetimes span
// all cross-template consumers), so the unmodified DpEngine executes
// it.  Per-template roots are pinned alive until the end of a pass —
// with mixed template sizes a whole job can be a shared sub-stage of a
// bigger one.

#include <cstddef>
#include <vector>

#include "sched/batch.hpp"
#include "treelet/partition.hpp"

namespace fascia::sched {

struct BatchPlan {
  int num_colors = 0;

  /// The merged stage DAG (a PartitionTree over all templates).
  PartitionTree merged;

  /// Merged node id of each job's root stage.
  std::vector<int> job_root;

  /// Merged node ids reachable from each job's root (sorted) — the
  /// stages one iteration of this job demands.  Used to build the
  /// needed-stage mask once jobs start retiring.
  std::vector<std::vector<int>> job_nodes;

  /// Non-leaf stages each job demands per iteration (cache-hit
  /// accounting numerator).
  std::vector<std::size_t> job_stage_demand;

  /// Per-job standalone DP cost Σ C(k,h)·C(h,a) — the attribution
  /// weight for splitting measured iteration time across jobs.
  std::vector<double> job_dp_cost;

  std::size_t total_stage_instances = 0;  ///< Σ job_stage_demand
  std::size_t unique_stages = 0;          ///< non-leaf merged stages
  double seconds = 0.0;                   ///< planning wall time
};

/// Builds the merged plan.  Validates per-job template sizes against
/// the batch's color count and the jobs' iteration budgets.
BatchPlan plan_batch(const Graph& graph, const std::vector<BatchJob>& jobs,
                     const BatchOptions& options);

}  // namespace fascia::sched
