#pragma once
// Batch counting engine: adaptive multi-template scheduling with
// cross-template DP reuse.
//
// The motif-finding workload (§V-E) counts *every* free tree of size k
// — 11 templates at k = 7, 106 at k = 10 — and a serial loop of
// count_template() calls pays for the same small rooted subtemplates
// once per template and cannot trade iterations between easy and hard
// templates.  run_batch() executes the whole template set as one
// planned workload instead:
//
//   * the planner (plan.hpp) partitions every template up front and
//     deduplicates rooted-isomorphic subtemplates *across* templates
//     into a single DP stage DAG;
//   * each batch iteration draws ONE shared coloring and walks the
//     merged DAG bottom-up, so a stage shared by several templates is
//     computed once per coloring and its table reused by every
//     consumer;
//   * per job, an adaptive controller keeps running iterations until
//     the relative standard error of the running mean meets the
//     requested target (or a cap) — easy templates retire early and
//     the remaining iterations shrink to the stages hard templates
//     still need;
//   * iterations are the outer OpenMP work units (private tables per
//     thread, as in ParallelMode::kOuterLoop), each spanning all still
//     active templates.
//
// Determinism: job j's iteration i always uses the coloring derived
// from (options.seed, i), so fixed-budget estimates are bit-identical
// to count_template(graph, tmpl, {seed, iterations, num_colors}) —
// independent of thread count, of the other jobs in the batch, and of
// whether cross-template reuse is enabled.  Adaptive stopping points
// additionally depend on round_iterations (explicitly set it for
// cross-machine reproducibility; the default follows the thread
// count).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/count_options.hpp"
#include "dp/count_table.hpp"
#include "graph/graph.hpp"
#include "run/controls.hpp"
#include "treelet/partition.hpp"
#include "treelet/tree_template.hpp"

namespace fascia::sched {

/// One counting job: a template plus its iteration budget.  A job is
/// *fixed* (exactly `iterations` rounds) unless target_relative_stderr
/// is positive, in which case it is *adaptive*: it runs until the
/// relative standard error of its running mean is <= the target or
/// max_iterations is reached.
struct BatchJob {
  TreeTemplate tmpl;
  int iterations = 1;                   ///< fixed budget (target == 0)
  double target_relative_stderr = 0.0;  ///< > 0: adaptive mode
  int max_iterations = 1000;            ///< adaptive cap
};

struct BatchOptions {
  /// Colors shared by the whole batch; 0 = largest template size.
  /// Every job must fit (template size <= num_colors).
  int num_colors = 0;

  TableKind table = TableKind::kCompact;
  PartitionStrategy partition = PartitionStrategy::kOneAtATime;

  /// Share DP tables between rooted-isomorphic subtemplates within one
  /// template (§III-C), as in CountOptions.
  bool share_tables = true;

  /// Deduplicate rooted-isomorphic subtemplates *across* templates
  /// into shared stages — the batch engine's main lever.  Disable to
  /// make the execution structurally identical to the per-template
  /// path (bit-identical estimates either way; see header comment).
  bool cross_template_reuse = true;

  /// kOuterLoop parallelizes over iterations (each spanning all active
  /// jobs, private tables per thread); kInnerLoop parallelizes the
  /// per-vertex loop inside each stage; kSerial is single-threaded.
  /// kHybrid splits the pool into outer_copies x inner_threads using
  /// the same cost model as count_template (choose_layout), with a
  /// modeled frontier occupancy instead of a probe iteration.
  ParallelMode mode = ParallelMode::kOuterLoop;

  /// OpenMP threads; 0 = runtime default.
  int num_threads = 0;

  std::uint64_t seed = 1;

  /// Run the pre-frontier scalar DP kernels (see
  /// CountOptions::reference_kernels).  Excluded from checkpoint
  /// fingerprints: estimates are identical either way.
  bool reference_kernels = false;

  /// DP kernel family (see CountOptions::Execution::kernel_family):
  /// kSpmm swaps eligible stages onto the masked-SpMM backend, bit-
  /// identical estimates.  Excluded from checkpoint fingerprints like
  /// reference_kernels; mutually exclusive with it.
  KernelFamily kernel_family = KernelFamily::kFrontier;

  /// Iterations adaptive jobs run before their first convergence
  /// check, and the granularity of later checks; >= 2.
  int min_iterations = 4;

  /// Convergence-check cadence (iterations between controller
  /// checkpoints); 0 = max(4, resolved thread count), which keeps all
  /// threads fed between checkpoints.
  int round_iterations = 0;

  /// Greedy cross-template budget reallocation (Motivo-style).  Off
  /// (default): every unconverged adaptive job is granted another
  /// round at each controller checkpoint — the uniform allocation,
  /// bit-identical to previous releases.  On: the adaptive jobs'
  /// max_iterations budgets POOL after their warm-up round, and each
  /// controller checkpoint grants the next round only to the
  /// unconverged job with the highest relative standard error; the
  /// other adaptive jobs pause (their stages drop out of the shared
  /// DP), so hard templates can consume budget easy templates never
  /// needed.  Fixed-budget jobs are unaffected.  Incompatible with
  /// checkpoint/resume (per-job sample streams decouple from the
  /// global coloring counter).
  bool adaptive_batch = false;

  /// Optional partition-tree source: when set, the planner calls this
  /// instead of running partition_template itself, so a host with a
  /// memoization layer (the service's GraphRegistry) can serve cached
  /// trees.  Must return exactly what partition_template(tmpl,
  /// strategy, share_tables, root) would.  Partition trees are
  /// graph-independent, which is why this cache survives graph
  /// mutations (mutate_graph) that invalidate reorder permutations.
  /// Never serialized: the host injects it at execution time.
  std::function<std::shared_ptr<const PartitionTree>(
      const TreeTemplate& tmpl, PartitionStrategy strategy, bool share_tables,
      int root)>
      partition_provider;

  /// Resilience controls (deadline, memory budget, cancellation,
  /// checkpoint/resume).  Inert by default; see run/controls.hpp.
  /// Checkpoints store every job's completed per-iteration prefix;
  /// fixed-budget jobs resume to bit-identical estimates (adaptive
  /// stopping points may shift with the changed round boundaries).
  RunControls run;

  /// Observability knobs (as in CountOptions::observability): enabled
  /// latches obs::set_enabled(true) for the run; collect_stages adds
  /// per-stage detail to the attached report.
  ObservabilityOptions observability;
};

struct BatchJobResult {
  double estimate = 0.0;              ///< mean of per_iteration
  std::vector<double> per_iteration;  ///< unbiased per-coloring estimates
  int iterations = 0;                 ///< iterations actually consumed
  double relative_stderr = 0.0;       ///< at termination
  bool adaptive = false;
  bool converged = true;  ///< adaptive: met target before the cap

  /// Wall time attributed to this job: each iteration's measured time
  /// split across the jobs active in it, proportionally to their
  /// standalone DP cost (shared stages make exact separation
  /// impossible).
  double seconds = 0.0;

  // ---- algorithm constants (as in CountResult) ------------------------
  double colorful_probability = 0.0;
  std::uint64_t automorphisms = 0;
};

/// RunOutcome base: `estimate` is the sum over jobs, `relative_stderr`
/// the worst per-job error at termination, `run`/`report` the usual
/// status and observability document.
struct BatchResult : RunOutcome {
  std::vector<BatchJobResult> jobs;

  int num_colors = 0;
  long long iterations_total = 0;  ///< Σ per-job iterations (work units)
  int coloring_rounds = 0;         ///< distinct shared colorings drawn

  double seconds_total = 0.0;
  double seconds_plan = 0.0;  ///< partitioning + merging time
  std::vector<double> seconds_per_iteration;  ///< whole-batch, per coloring

  // ---- cross-template reuse statistics --------------------------------
  /// Plan-level: DP stages demanded by all jobs together vs stages in
  /// the merged DAG (counting within-template sharing once).
  std::size_t total_stage_instances = 0;
  std::size_t unique_stages = 0;

  /// Execution-level: stage computations the jobs demanded vs actually
  /// performed, summed over iterations (masked stages of retired jobs
  /// are excluded from both).
  std::size_t stage_requests = 0;
  std::size_t stage_evaluations = 0;

  /// Fraction of demanded stage computations served from a shared
  /// stage computed for another template: 1 - evaluations/requests.
  [[nodiscard]] double cache_hit_rate() const noexcept {
    if (stage_requests == 0) return 0.0;
    return 1.0 - static_cast<double>(stage_evaluations) /
                     static_cast<double>(stage_requests);
  }

  /// Thread layout the batch executed with (outer engine copies x
  /// inner sweep threads); {1, 1} for serial runs.
  ThreadLayout layout;
};

/// Executes all jobs against `graph` as one planned workload.  Throws
/// std::invalid_argument on an empty job list, inconsistent labeling,
/// num_colors smaller than a template, or bad budgets.
BatchResult run_batch(const Graph& graph, const std::vector<BatchJob>& jobs,
                      const BatchOptions& options = {});

}  // namespace fascia::sched
