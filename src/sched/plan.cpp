#include "sched/plan.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

#include "util/timer.hpp"

#include "util/error.hpp"

namespace fascia::sched {

namespace {

int resolve_colors(const std::vector<BatchJob>& jobs,
                   const BatchOptions& options) {
  if (options.num_colors > 0) return options.num_colors;
  int k = 1;
  for (const BatchJob& job : jobs) k = std::max(k, job.tmpl.size());
  return k;
}

void validate(const Graph& graph, const std::vector<BatchJob>& jobs,
              const BatchOptions& options, int k) {
  if (jobs.empty()) {
    throw usage_error("run_batch: empty job list");
  }
  if (k > kMaxTemplateSize) {
    throw usage_error("run_batch: too many colors");
  }
  if (options.min_iterations < 2) {
    throw usage_error("run_batch: min_iterations must be >= 2");
  }
  if (options.adaptive_batch &&
      (!options.run.checkpoint_path.empty() || options.run.resume)) {
    // Greedy grants decouple per-job sample streams from the global
    // coloring counter, which the checkpoint format indexes by.
    throw usage_error(
        "run_batch: adaptive_batch cannot be combined with "
        "checkpoint/resume");
  }
  for (const BatchJob& job : jobs) {
    if (job.tmpl.has_labels() != graph.has_labels()) {
      throw usage_error(
          "run_batch: every template and the graph must agree on labeling");
    }
    if (job.tmpl.size() > k) {
      throw usage_error(
          "run_batch: num_colors must cover every template");
    }
    if (job.target_relative_stderr > 0.0) {
      if (job.max_iterations < 2) {
        throw usage_error(
            "run_batch: adaptive jobs need max_iterations >= 2");
      }
    } else if (job.iterations < 1) {
      throw usage_error(
          "run_batch: fixed jobs need iterations >= 1");
    }
  }
}

}  // namespace

BatchPlan plan_batch(const Graph& graph, const std::vector<BatchJob>& jobs,
                     const BatchOptions& options) {
  WallTimer timer;
  BatchPlan plan;
  plan.num_colors = resolve_colors(jobs, options);
  validate(graph, jobs, options, plan.num_colors);

  // Intern every partition node into the global stage list.  The canon
  // key is the rooted canonical form (labels included), so two stages
  // merge exactly when their DP tables would be equal for every
  // coloring.  Cross-template interning subsumes within-template
  // sharing; share_tables only shapes the per-template partitions when
  // reuse is off.
  std::vector<Subtemplate> nodes;
  std::map<std::string, int> intern;
  for (const BatchJob& job : jobs) {
    const std::shared_ptr<const PartitionTree> cached =
        options.partition_provider
            ? options.partition_provider(job.tmpl, options.partition,
                                         options.share_tables, /*root=*/-1)
            : nullptr;
    const PartitionTree part =
        cached ? *cached
               : partition_template(job.tmpl, options.partition,
                                    options.share_tables, /*root=*/-1);
    plan.job_dp_cost.push_back(part.dp_cost(plan.num_colors));

    std::vector<int> local_to_merged(
        static_cast<std::size_t>(part.num_nodes()), -1);
    for (int i = 0; i < part.num_nodes(); ++i) {
      const Subtemplate& local = part.node(i);
      if (options.cross_template_reuse) {
        if (auto it = intern.find(local.canon); it != intern.end()) {
          local_to_merged[static_cast<std::size_t>(i)] = it->second;
          continue;
        }
      }
      Subtemplate stage = local;
      if (!stage.is_leaf()) {
        stage.active =
            local_to_merged[static_cast<std::size_t>(local.active)];
        stage.passive =
            local_to_merged[static_cast<std::size_t>(local.passive)];
      }
      nodes.push_back(std::move(stage));
      const int id = static_cast<int>(nodes.size()) - 1;
      local_to_merged[static_cast<std::size_t>(i)] = id;
      if (options.cross_template_reuse) intern.emplace(local.canon, id);
    }
    plan.job_root.push_back(
        local_to_merged[static_cast<std::size_t>(part.root_node())]);
  }

  // Per-template roots stay alive until the end of a pass: with mixed
  // sizes a job's root can double as another job's internal stage.
  plan.merged = PartitionTree::from_nodes(std::move(nodes), plan.job_root);

  for (int i = 0; i < plan.merged.num_nodes(); ++i) {
    if (!plan.merged.node(i).is_leaf()) ++plan.unique_stages;
  }

  // Stage demand per job = non-leaf stages reachable from its root in
  // the *merged* DAG (a deduped node contributes its representative's
  // decomposition, which is what one iteration actually computes).
  plan.job_nodes.resize(jobs.size());
  plan.job_stage_demand.resize(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    std::vector<char> seen(static_cast<std::size_t>(plan.merged.num_nodes()),
                           0);
    std::vector<int> stack = {plan.job_root[j]};
    seen[static_cast<std::size_t>(plan.job_root[j])] = 1;
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      plan.job_nodes[j].push_back(id);
      const Subtemplate& stage = plan.merged.node(id);
      if (stage.is_leaf()) continue;
      ++plan.job_stage_demand[j];
      for (int child : {stage.active, stage.passive}) {
        if (!seen[static_cast<std::size_t>(child)]) {
          seen[static_cast<std::size_t>(child)] = 1;
          stack.push_back(child);
        }
      }
    }
    std::sort(plan.job_nodes[j].begin(), plan.job_nodes[j].end());
    plan.total_stage_instances += plan.job_stage_demand[j];
  }

  plan.seconds = timer.elapsed_s();
  return plan;
}

}  // namespace fascia::sched
