#include "sched/batch.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "comb/binomial.hpp"
#include "core/coloring.hpp"
#include "core/engine.hpp"
#include "core/thread_layout.hpp"
#include "dp/table_compact.hpp"
#include "dp/table_hash.hpp"
#include "dp/table_naive.hpp"
#include "dp/table_succinct.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "run/checkpoint.hpp"
#include "run/guard.hpp"
#include "run/memory.hpp"
#include "sched/plan.hpp"
#include "treelet/canonical.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/mem_tracker.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace fascia::sched {

namespace {

using detail::iteration_seed;
using detail::random_coloring;

const obs::Metric& colorings_metric() {
  static const obs::Metric m("count.colorings",
                             obs::InstrumentKind::kCounter);
  return m;
}
const obs::Metric& iteration_seconds_metric() {
  static const obs::Metric m("run.iteration.seconds",
                             obs::InstrumentKind::kTimeHistogram);
  return m;
}
const obs::Metric& run_seconds_metric() {
  static const obs::Metric m("run.seconds",
                             obs::InstrumentKind::kTimeHistogram);
  return m;
}
const obs::Metric& peak_bytes_metric() {
  static const obs::Metric m("run.peak_table_bytes",
                             obs::InstrumentKind::kGauge);
  return m;
}

int resolve_threads(int requested) {
#ifdef _OPENMP
  return requested > 0 ? requested : omp_get_max_threads();
#else
  (void)requested;
  return 1;
#endif
}

/// Controller view of one job while the batch runs.
struct JobState {
  double scale = 0.0;     ///< raw colorful total -> occurrence estimate
  bool adaptive = false;
  double target = 0.0;    ///< relative-stderr goal (adaptive only)
  int quota = 0;          ///< samples granted so far
  int cap = 0;            ///< never exceed (fixed budget or adaptive cap)
  int base = 0;           ///< sample slot where the current round lands
  bool finished = false;
  bool leaf_root = false; ///< single-vertex template
  double leaf_raw = 0.0;  ///< its coloring-independent raw count

  /// Samples this job has actually collected.  Uniform allocation
  /// keeps every active job in every coloring round, so this equals
  /// the global round counter; under adaptive_batch paused jobs fall
  /// behind it.
  [[nodiscard]] int collected(const BatchJobResult& result) const noexcept {
    return static_cast<int>(result.per_iteration.size());
  }
};

/// Run-layer configuration resolved before table-type dispatch.
struct BatchSetup {
  TableKind table = TableKind::kCompact;
  int engine_copies = 0;  ///< 0 = no cap (no memory plan ran)
  bool ladder_degraded = false;
  bool spill = false;  ///< plan took the out-of-core rung
  std::uint64_t fingerprint = 0;
  RunReport report;
};

template <class Table>
void execute(const Graph& graph, const std::vector<BatchJob>& jobs,
             const BatchOptions& options, const BatchPlan& plan,
             const BatchSetup& setup, BatchResult& out,
             std::vector<obs::ReportStage>* stages) {
  const int k = plan.num_colors;
  int threads = resolve_threads(options.num_threads);
  const bool outer_mode = options.mode == ParallelMode::kOuterLoop;
  const bool inner_mode = options.mode == ParallelMode::kInnerLoop;
  const bool hybrid = options.mode == ParallelMode::kHybrid;
  if (outer_mode && setup.engine_copies > 0) {
    threads = std::min(threads, setup.engine_copies);
  }

  // Resolve the outer x inner split.  The batch engine has no probe
  // iteration (the first coloring already spans every job), so hybrid
  // mode feeds choose_layout a modeled occupancy: unlabeled sweeps
  // visit nearly every vertex, labeled frontiers are sparse.
  ThreadLayout layout;
  if (hybrid) {
    int longest_job = 1;
    for (const BatchJob& job : jobs) {
      longest_job =
          std::max(longest_job, job.target_relative_stderr > 0.0
                                    ? job.max_iterations
                                    : job.iterations);
    }
    LayoutInputs in;
    in.threads = threads;
    in.iterations = longest_job;
    in.num_vertices = graph.num_vertices();
    in.frontier_occupancy = graph.has_labels() ? 0.15 : 0.85;
    in.table_bytes_per_copy = run::estimate_peak_bytes(
        plan.merged, k, graph.num_vertices(), setup.table,
        graph.has_labels());
    if (options.kernel_family == KernelFamily::kSpmm) {
      in.spmm_bytes_per_copy = run::estimate_spmm_multivector_bytes(
          plan.merged, k, graph.num_vertices(), graph.has_labels());
    }
    in.memory_budget_bytes = options.run.memory_budget_bytes;
    layout = choose_layout(in);
    if (setup.engine_copies > 0 &&
        layout.outer_copies > setup.engine_copies) {
      layout.outer_copies = setup.engine_copies;
      layout.inner_threads = std::max(1, threads / layout.outer_copies);
    }
  } else if (outer_mode) {
    layout.outer_copies = threads;
    layout.inner_threads = 1;
  } else if (inner_mode) {
    layout.outer_copies = 1;
    layout.inner_threads = threads;
  }
  const bool outer = layout.outer_copies > 1;
  const bool parallel_inner = inner_mode || layout.inner_threads > 1;
  out.layout = layout;

  const int round = options.round_iterations > 0 ? options.round_iterations
                                                 : std::max(4, threads);
#ifdef _OPENMP
  if (inner_mode && options.num_threads > 0) {
    omp_set_num_threads(options.num_threads);
  }
  if (outer && parallel_inner) omp_set_max_active_levels(2);
#endif

  const RunControls& controls = options.run;
  // Directory targets resolve to a fingerprint-named file so batch
  // jobs sharing one work directory keep distinct checkpoints.
  const std::string checkpoint_path = run::resolve_checkpoint_path(
      controls.checkpoint_path, run::Checkpoint::kKindBatch,
      setup.fingerprint);
  const bool checkpointing = !checkpoint_path.empty();
  const int checkpoint_every = std::max(1, controls.checkpoint_every);
  RunGuard guard(controls);

  out.run = setup.report;
  out.run.engine_copies = layout.outer_copies;

  // One private engine (and thus private stage tables) per outer copy,
  // exactly like ParallelMode::kOuterLoop in count_template.
  std::vector<DpEngine<Table>> engines;
  const int engine_count = layout.outer_copies;
  engines.reserve(static_cast<std::size_t>(engine_count));
  // The per-label frontier lists are graph-global: build them once and
  // share them across all engine copies.
  DpEngineOptions engine_opts;
  engine_opts.reference_kernels = options.reference_kernels;
  engine_opts.spmm_kernels =
      options.kernel_family == KernelFamily::kSpmm;
  engine_opts.collect_stats =
      obs::enabled() && options.observability.collect_stages;
  engine_opts.inner_threads = layout.inner_threads;
  engine_opts.guided_schedule = hybrid;
  if (graph.has_labels()) {
    engine_opts.label_frontiers = LabelFrontiers::build(graph);
  }
  // Out-of-core rung: each engine copy pages completed stage tables
  // against its share of the byte budget (run/spill.hpp).
  if (setup.spill && !options.run.spill_dir.empty() &&
      options.run.memory_budget_bytes > 0) {
    engine_opts.spill_dir = options.run.spill_dir;
    engine_opts.spill_budget_bytes =
        options.run.memory_budget_bytes /
        static_cast<std::size_t>(std::max(1, layout.outer_copies));
  }
  for (int t = 0; t < engine_count; ++t) {
    engines.emplace_back(graph, plan.merged, k, engine_opts);
    engines.back().set_guard(&guard);
  }

  const std::size_t num_jobs = jobs.size();
  std::vector<JobState> states(num_jobs);
  int requested = 0;
  for (std::size_t j = 0; j < num_jobs; ++j) {
    BatchJobResult& result = out.jobs[j];
    result.colorful_probability =
        colorful_probability(k, jobs[j].tmpl.size());
    result.automorphisms = automorphisms(jobs[j].tmpl);
    JobState& state = states[j];
    state.scale = 1.0 / (result.colorful_probability *
                         static_cast<double>(result.automorphisms));
    state.adaptive = jobs[j].target_relative_stderr > 0.0;
    state.target = jobs[j].target_relative_stderr;
    state.cap = state.adaptive ? jobs[j].max_iterations : jobs[j].iterations;
    state.quota = state.adaptive
                      ? std::min(state.cap,
                                 std::max(options.min_iterations, round))
                      : state.cap;
    result.adaptive = state.adaptive;
    const int root = plan.job_root[j];
    state.leaf_root = plan.merged.node(root).is_leaf();
    if (state.leaf_root) state.leaf_raw = engines.front().leaf_count(root);
    requested = std::max(requested, state.cap);
  }
  out.run.requested_iterations = requested;

  const auto num_nodes = static_cast<std::size_t>(plan.merged.num_nodes());
  int done = 0;

  // Greedy cross-template reallocation: the adaptive jobs' remaining
  // budgets pool after warm-up, and each controller checkpoint hands
  // the next round to the unconverged job with the worst error.
  const bool greedy = options.adaptive_batch;
  long long grant_pool = 0;
  if (greedy) {
    for (const JobState& state : states) {
      if (state.adaptive) grant_pool += state.cap - state.quota;
    }
  }

  // ---- resume -----------------------------------------------------------
  if (checkpointing && controls.resume) {
    std::string why;
    if (auto loaded = run::load_checkpoint(checkpoint_path, &why)) {
      const run::Checkpoint& ck = *loaded;
      const int restored = static_cast<int>(ck.iterations_done);
      bool lengths_ok = ck.per_job.size() == num_jobs;
      if (lengths_ok) {
        for (const auto& series : ck.per_job) {
          if (static_cast<int>(series.size()) > restored) lengths_ok = false;
        }
      }
      if (ck.kind != run::Checkpoint::kKindBatch) {
        why = "checkpoint kind mismatch";
      } else if (ck.fingerprint != setup.fingerprint) {
        why = "checkpoint fingerprint mismatch";
      } else if (!lengths_ok) {
        why = "checkpoint arrays inconsistent";
      } else {
        for (std::size_t j = 0; j < num_jobs; ++j) {
          out.jobs[j].per_iteration = ck.per_job[j];
        }
        done = restored;
        out.seconds_per_iteration.assign(static_cast<std::size_t>(done),
                                         0.0);
        // Quotas and retirement flags are not serialized: the
        // controller is deterministic in the restored estimates, so
        // replaying its retirement tests against the restored arrays
        // reconstructs them exactly as the interrupted run left them.
        int sim_done = 0;
        while (sim_done < done) {
          int quota_edge = 0;
          bool any = false;
          for (const JobState& state : states) {
            if (state.finished) continue;
            quota_edge =
                any ? std::min(quota_edge, state.quota) : state.quota;
            any = true;
          }
          if (!any) break;
          sim_done = std::min(quota_edge, done);
          if (sim_done != quota_edge) break;  // checkpoint fell mid-round
          for (std::size_t j = 0; j < num_jobs; ++j) {
            JobState& state = states[j];
            if (state.finished || state.quota != sim_done) continue;
            BatchJobResult& result = out.jobs[j];
            const auto prefix_len = std::min(
                result.per_iteration.size(),
                static_cast<std::size_t>(sim_done));
            const std::vector<double> prefix(
                result.per_iteration.begin(),
                result.per_iteration.begin() +
                    static_cast<std::ptrdiff_t>(prefix_len));
            result.relative_stderr = relative_mean_stderr(prefix);
            if (!state.adaptive) {
              state.finished = true;
              continue;
            }
            if (result.relative_stderr <= state.target) {
              state.finished = true;
              result.converged = true;
            } else if (sim_done >= state.cap) {
              state.finished = true;
              result.converged = false;
            } else {
              state.quota = std::min(state.cap, sim_done + round);
            }
          }
        }
        out.run.resumed = true;
        out.run.resumed_iterations = done;
        why.clear();
      }
      if (!why.empty()) out.run.resume_rejected = why;
    } else if (why != "cannot open checkpoint") {
      out.run.resume_rejected = why;
    }
  }
  int last_saved = done;

  const auto save_checkpoint = [&]() {
    run::Checkpoint ck;
    ck.kind = run::Checkpoint::kKindBatch;
    ck.seed = options.seed;
    ck.num_colors = static_cast<std::uint32_t>(k);
    ck.fingerprint = setup.fingerprint;
    ck.iterations_done = static_cast<std::uint32_t>(done);
    ck.per_job.reserve(num_jobs);
    for (std::size_t j = 0; j < num_jobs; ++j) {
      ck.per_job.push_back(out.jobs[j].per_iteration);
    }
    try {
      run::save_checkpoint(checkpoint_path, ck);
      ++out.run.checkpoints_written;
      last_saved = done;
    } catch (const Error&) {
      ++out.run.checkpoint_failures;
    }
  };

  std::exception_ptr first_error;
  while (!guard.stopped()) {
    // Active = jobs with granted samples still to collect.  Under
    // uniform allocation every unfinished job qualifies; under greedy
    // allocation paused jobs (quota spent, not yet re-granted) drop
    // out, and with them their exclusive DP stages.
    std::vector<std::size_t> active;
    for (std::size_t j = 0; j < num_jobs; ++j) {
      if (!states[j].finished &&
          states[j].quota > states[j].collected(out.jobs[j])) {
        active.push_back(j);
      }
    }
    if (active.empty()) break;
    if (fault::fire("run.crash")) throw fault::Injected("run.crash");

    // Round length: the smallest outstanding grant among active jobs
    // (every active job collects one sample per coloring).  Fixed-
    // budget jobs grant their whole cap up front, which would make one
    // giant round; when checkpointing, cap the round so the on-disk
    // state never lags more than checkpoint_every iterations.
    int len = states[active.front()].quota -
              states[active.front()].collected(out.jobs[active.front()]);
    for (std::size_t j : active) {
      len = std::min(len, states[j].quota - states[j].collected(out.jobs[j]));
    }
    if (checkpointing) len = std::min(len, checkpoint_every);
    const int end = done + len;

    // Stages this round's iterations must compute: union over active
    // jobs.  Retired jobs' exclusive stages drop out, so late rounds
    // spend every thread on what the hard templates still need.
    std::vector<char> needed(num_nodes, 0);
    std::size_t demand = 0;
    double cost_sum = 0.0;
    for (std::size_t j : active) {
      for (int id : plan.job_nodes[j]) {
        needed[static_cast<std::size_t>(id)] = 1;
      }
      demand += plan.job_stage_demand[j];
      cost_sum += plan.job_dp_cost[j];
    }
    std::size_t computed = 0;
    for (std::size_t i = 0; i < num_nodes; ++i) {
      if (needed[i] != 0 && !plan.merged.node(static_cast<int>(i)).is_leaf()) {
        ++computed;
      }
    }

    const int begin = done;
    out.seconds_per_iteration.resize(static_cast<std::size_t>(end), 0.0);
    for (std::size_t j : active) {
      // A job's samples append at its own base (= its collected count:
      // the global round counter under uniform allocation, less for a
      // greedily re-granted job that sat out some rounds).
      states[j].base = states[j].collected(out.jobs[j]);
      out.jobs[j].per_iteration.resize(
          static_cast<std::size_t>(states[j].base + len), 0.0);
    }
    std::vector<char> completed(static_cast<std::size_t>(end - begin), 0);

    const auto run_one = [&](int iter, DpEngine<Table>& engine,
                             bool inner_sweep) {
      if (guard.poll()) return;
      WallTimer timer;
      try {
        FASCIA_TRACE("iteration", iter);
        colorings_metric().add();
        const ColorArray colors =
            random_coloring(graph, k, iteration_seed(options.seed, iter));
        engine.compute_tables(colors, inner_sweep, &needed);
        if (guard.stopped()) {
          engine.release_all_tables();
          return;
        }
        for (std::size_t j : active) {
          const double raw = states[j].leaf_root
                                 ? states[j].leaf_raw
                                 : engine.node_total(plan.job_root[j]);
          out.jobs[j].per_iteration[static_cast<std::size_t>(
              states[j].base + (iter - begin))] = raw * states[j].scale;
        }
        engine.release_all_tables();
        const double secs = timer.elapsed_s();
        out.seconds_per_iteration[static_cast<std::size_t>(iter)] = secs;
        iteration_seconds_metric().observe(secs);
        completed[static_cast<std::size_t>(iter - begin)] = 1;
      } catch (const std::bad_alloc&) {
        engine.release_all_tables();
        guard.stop(RunStatus::kMemDegraded);
      } catch (const Error& error) {
        engine.release_all_tables();
        if (error.category() == ErrorCategory::kResource) {
          guard.stop(RunStatus::kMemDegraded);
        } else {
#ifdef _OPENMP
#pragma omp critical(fascia_batch_error)
#endif
          if (first_error == nullptr) {
            first_error = std::current_exception();
          }
          guard.stop(RunStatus::kCancelled);
        }
      }
    };

#ifdef _OPENMP
    if (outer) {
#pragma omp parallel num_threads(layout.outer_copies)
      {
        DpEngine<Table>& engine =
            engines[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 1)
        for (int iter = begin; iter < end; ++iter) {
          run_one(iter, engine, parallel_inner);
        }
      }
    } else
#endif
    {
      for (int iter = begin; iter < end; ++iter) {
        if (fault::fire("run.crash")) throw fault::Injected("run.crash");
        run_one(iter, engines.front(), parallel_inner);
        if (guard.stopped()) break;
      }
    }
    if (first_error != nullptr) std::rethrow_exception(first_error);

    // Contiguous completed prefix: a counter-mode resume point.  On a
    // clean round this is simply `end`.
    int prefix = begin;
    while (prefix < end &&
           completed[static_cast<std::size_t>(prefix - begin)] != 0) {
      ++prefix;
    }
    const auto round_completed = static_cast<std::size_t>(
        std::count(completed.begin(), completed.end(), char{1}));
    out.stage_requests += demand * round_completed;
    out.stage_evaluations += computed * round_completed;
    for (int iter = begin; iter < prefix; ++iter) {
      const double share =
          out.seconds_per_iteration[static_cast<std::size_t>(iter)] /
          (cost_sum > 0.0 ? cost_sum : 1.0);
      for (std::size_t j : active) {
        out.jobs[j].seconds += share * plan.job_dp_cost[j];
      }
    }
    done = prefix;
    if (done < end) {
      // Early stop mid-round: stragglers past the gap are discarded so
      // the retained estimates form an exact iteration prefix.
      out.seconds_per_iteration.resize(static_cast<std::size_t>(done));
      for (std::size_t j : active) {
        out.jobs[j].per_iteration.resize(
            static_cast<std::size_t>(states[j].base + (done - begin)));
      }
    }
    if (checkpointing && done > last_saved) save_checkpoint();

    // Controller checkpoint: retire fixed jobs whose budget is spent;
    // test adaptive jobs against their target and either retire them,
    // grant another round (uniform), or leave them paused for the
    // greedy grant below.
    for (std::size_t j : active) {
      JobState& state = states[j];
      if (state.quota != state.collected(out.jobs[j])) continue;
      BatchJobResult& result = out.jobs[j];
      result.relative_stderr = relative_mean_stderr(result.per_iteration);
      if (!state.adaptive) {
        state.finished = true;
        continue;
      }
      if (result.relative_stderr <= state.target) {
        state.finished = true;
        result.converged = true;
      } else if (greedy) {
        if (grant_pool <= 0) {
          state.finished = true;
          result.converged = false;
        }
        // else: paused until the greedy grant picks it
      } else if (done >= state.cap) {
        state.finished = true;
        result.converged = false;
      } else {
        state.quota = std::min(state.cap, done + round);
      }
    }

    if (greedy) {
      // Grant the next round to the unconverged adaptive job with the
      // worst relative standard error — remaining budget flows to the
      // templates that still need it (the cross-template analogue of
      // Motivo's adaptive sampling).
      if (grant_pool > 0) {
        std::size_t best = num_jobs;
        double worst = -1.0;
        for (std::size_t j = 0; j < num_jobs; ++j) {
          const JobState& state = states[j];
          if (state.finished || !state.adaptive) continue;
          if (state.quota > state.collected(out.jobs[j])) continue;
          if (out.jobs[j].relative_stderr > worst) {
            worst = out.jobs[j].relative_stderr;
            best = j;
          }
        }
        if (best < num_jobs) {
          const int grant =
              static_cast<int>(std::min<long long>(round, grant_pool));
          states[best].quota += grant;
          grant_pool -= grant;
        }
      }
      if (grant_pool <= 0) {
        // Budget exhausted: retire every still-paused adaptive job so
        // the batch terminates (a job mid-grant finishes its round and
        // retires at the controller above).
        for (std::size_t j = 0; j < num_jobs; ++j) {
          JobState& state = states[j];
          if (state.finished || !state.adaptive) continue;
          if (state.quota <= state.collected(out.jobs[j])) {
            state.finished = true;
            out.jobs[j].converged = false;
          }
        }
      }
    }
  }

  out.coloring_rounds = done;
  for (std::size_t j = 0; j < num_jobs; ++j) {
    BatchJobResult& result = out.jobs[j];
    result.iterations = static_cast<int>(result.per_iteration.size());
    result.estimate = mean(result.per_iteration);
    out.iterations_total += result.iterations;
  }
  if (engine_opts.collect_stats) {
    for (const DpEngine<Table>& engine : engines) {
      merge_stage_stats(engine.stage_stats(), Table::kName, stages);
    }
  }
  for (const DpEngine<Table>& engine : engines) {
    out.run.spilled_bytes += engine.spilled_bytes();
    out.run.spill_events += engine.spill_events();
  }
  out.run.completed_iterations = done;
  if (guard.stopped()) {
    out.run.status = guard.status();
  } else if (setup.ladder_degraded) {
    out.run.status = RunStatus::kMemDegraded;
  } else {
    out.run.status = RunStatus::kCompleted;
  }
}

}  // namespace

BatchResult run_batch(const Graph& graph, const std::vector<BatchJob>& jobs,
                      const BatchOptions& options) {
  if (options.observability.enabled) obs::set_enabled(true);
  if (options.reference_kernels &&
      options.kernel_family == KernelFamily::kSpmm) {
    throw usage_error(
        "run_batch: reference_kernels and KernelFamily::kSpmm are mutually "
        "exclusive (the reference path has no SpMM form; pick one)");
  }
  FASCIA_TRACE("batch.run", static_cast<std::int64_t>(jobs.size()));
  WallTimer total_timer;
  const BatchPlan plan = plan_batch(graph, jobs, options);

  BatchResult result;
  result.jobs.resize(jobs.size());
  result.num_colors = plan.num_colors;
  result.seconds_plan = plan.seconds;
  result.total_stage_instances = plan.total_stage_instances;
  result.unique_stages = plan.unique_stages;

  BatchSetup setup;
  setup.table = options.table;
  if (options.run.memory_budget_bytes > 0) {
    const int copies = options.mode == ParallelMode::kOuterLoop ||
                               options.mode == ParallelMode::kHybrid
                           ? resolve_threads(options.num_threads)
                           : 1;
    const int threads_per_copy = options.mode == ParallelMode::kInnerLoop
                                     ? resolve_threads(options.num_threads)
                                     : 1;
    const std::size_t spmm_bytes =
        options.kernel_family == KernelFamily::kSpmm
            ? run::estimate_spmm_multivector_bytes(
                  plan.merged, plan.num_colors, graph.num_vertices(),
                  graph.has_labels())
            : 0;
    const run::MemoryPlan memory = run::plan_memory(
        plan.merged, plan.num_colors, graph.num_vertices(),
        graph.has_labels(), options.table, copies,
        options.run.memory_budget_bytes, threads_per_copy,
        /*spill_available=*/!options.run.spill_dir.empty(), spmm_bytes);
    setup.table = memory.table;
    setup.engine_copies = memory.engine_copies;
    setup.spill = memory.spill;
    setup.ladder_degraded = !memory.degradations.empty();
    setup.report.degradations = memory.degradations;
    setup.report.estimated_peak_bytes = memory.estimated_peak_bytes;
  }
  setup.report.table_used = setup.table;

  std::uint64_t fp = run::kFingerprintSeed;
  fp = run::fingerprint_mix(fp, std::uint64_t{run::Checkpoint::kKindBatch});
  fp = run::fingerprint_mix(fp,
                            static_cast<std::uint64_t>(graph.num_vertices()));
  fp = run::fingerprint_mix(fp, static_cast<std::uint64_t>(graph.num_edges()));
  fp = run::fingerprint_mix(fp, options.seed);
  fp = run::fingerprint_mix(fp, static_cast<std::uint64_t>(plan.num_colors));
  fp = run::fingerprint_mix(fp, static_cast<std::uint64_t>(setup.table));
  for (const BatchJob& job : jobs) {
    fp = run::fingerprint_mix(fp, job.tmpl.describe());
  }
  setup.fingerprint = fp;

  std::vector<obs::ReportStage> stages;
  std::size_t peak_bytes = 0;
  {
    PeakMemScope peak_scope(peak_bytes);
    switch (setup.table) {
      case TableKind::kNaive:
        execute<NaiveTable>(graph, jobs, options, plan, setup, result,
                            &stages);
        break;
      case TableKind::kCompact:
        execute<CompactTable>(graph, jobs, options, plan, setup, result,
                              &stages);
        break;
      case TableKind::kHash:
        execute<HashTable>(graph, jobs, options, plan, setup, result,
                           &stages);
        break;
      case TableKind::kSuccinct:
        execute<SuccinctTable>(graph, jobs, options, plan, setup, result,
                               &stages);
        break;
    }
  }

  result.seconds_total = total_timer.elapsed_s();
  run_seconds_metric().observe(result.seconds_total);
  peak_bytes_metric().set(static_cast<double>(peak_bytes));

  // RunOutcome view of the batch: sum of job estimates, worst per-job
  // error (sums of counts at heterogeneous scales make a pooled stderr
  // meaningless; the max is the honest "all jobs at least this good").
  result.estimate = 0.0;
  result.relative_stderr = 0.0;
  for (const BatchJobResult& job : result.jobs) {
    result.estimate += job.estimate;
    result.relative_stderr =
        std::max(result.relative_stderr, job.relative_stderr);
  }

  auto report = std::make_shared<obs::RunReport>();
  report->kind = "run_batch";
  report->label = options.observability.label;
  report->options = {
      {"jobs", std::to_string(jobs.size())},
      {"num_colors", std::to_string(plan.num_colors)},
      {"seed", std::to_string(options.seed)},
      {"table", table_kind_name(options.table)},
      {"partition", options.partition == PartitionStrategy::kOneAtATime
                        ? "one_at_a_time"
                        : "balanced"},
      {"share_tables", options.share_tables ? "true" : "false"},
      {"cross_template_reuse",
       options.cross_template_reuse ? "true" : "false"},
      {"mode", parallel_mode_name(options.mode)},
      {"num_threads", std::to_string(options.num_threads)},
      {"min_iterations", std::to_string(options.min_iterations)},
      {"round_iterations", std::to_string(options.round_iterations)},
      {"adaptive_batch", options.adaptive_batch ? "true" : "false"},
  };
  report->graph.vertices = static_cast<std::int64_t>(graph.num_vertices());
  report->graph.edges = static_cast<std::int64_t>(graph.num_edges());
  report->graph.max_degree = static_cast<std::int64_t>(graph.max_degree());
  report->graph.labeled = graph.has_labels();
  report->tmpl.subtemplates = static_cast<int>(result.unique_stages);
  report->sampling.requested_iterations = result.run.requested_iterations;
  report->sampling.completed_iterations = result.run.completed_iterations;
  report->sampling.num_colors = plan.num_colors;
  report->sampling.seed = options.seed;
  report->sampling.estimate = result.estimate;
  report->sampling.relative_stderr = result.relative_stderr;
  report->timing.total_seconds = result.seconds_total;
  report->timing.plan_seconds = result.seconds_plan;
  report->timing.per_iteration_seconds = result.seconds_per_iteration;
  report->memory.planned_peak_bytes = result.run.estimated_peak_bytes;
  report->memory.observed_peak_bytes = peak_bytes;
  report->memory.spilled_bytes = result.run.spilled_bytes;
  report->memory.spill_events = result.run.spill_events;
  report->memory.table = table_kind_name(result.run.table_used);
  report->memory.degradations = result.run.degradations;
  report->threads.mode = parallel_mode_name(options.mode);
  report->threads.outer_copies = result.layout.outer_copies;
  report->threads.inner_threads = result.layout.inner_threads;
#ifdef _OPENMP
  report->threads.omp_max_threads = omp_get_max_threads();
#else
  report->threads.omp_max_threads = 1;
#endif
  report->run.status = run_status_name(result.run.status);
  report->run.resumed = result.run.resumed;
  report->run.resumed_iterations = result.run.resumed_iterations;
  report->run.resume_rejected = result.run.resume_rejected;
  report->run.checkpoints_written = result.run.checkpoints_written;
  report->run.checkpoint_failures = result.run.checkpoint_failures;
  report->jobs.reserve(result.jobs.size());
  for (std::size_t j = 0; j < result.jobs.size(); ++j) {
    obs::ReportJob entry;
    entry.name = jobs[j].tmpl.describe();
    entry.estimate = result.jobs[j].estimate;
    entry.relative_stderr = result.jobs[j].relative_stderr;
    entry.iterations = result.jobs[j].iterations;
    entry.converged = result.jobs[j].converged;
    report->jobs.push_back(std::move(entry));
  }
  report->stages = std::move(stages);
  result.report = std::move(report);
  return result;
}

}  // namespace fascia::sched
