#include "sched/batch.hpp"

#include <algorithm>
#include <stdexcept>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "comb/binomial.hpp"
#include "core/coloring.hpp"
#include "core/engine.hpp"
#include "dp/table_compact.hpp"
#include "dp/table_hash.hpp"
#include "dp/table_naive.hpp"
#include "sched/plan.hpp"
#include "treelet/canonical.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace fascia::sched {

namespace {

using detail::iteration_seed;
using detail::random_coloring;

int resolve_threads(int requested) {
#ifdef _OPENMP
  return requested > 0 ? requested : omp_get_max_threads();
#else
  (void)requested;
  return 1;
#endif
}

/// Controller view of one job while the batch runs.
struct JobState {
  double scale = 0.0;     ///< raw colorful total -> occurrence estimate
  bool adaptive = false;
  double target = 0.0;    ///< relative-stderr goal (adaptive only)
  int quota = 0;          ///< iterations granted so far
  int cap = 0;            ///< never exceed (fixed budget or adaptive cap)
  bool finished = false;
  bool leaf_root = false; ///< single-vertex template
  double leaf_raw = 0.0;  ///< its coloring-independent raw count
};

template <class Table>
void execute(const Graph& graph, const std::vector<BatchJob>& jobs,
             const BatchOptions& options, const BatchPlan& plan,
             BatchResult& out) {
  const int k = plan.num_colors;
  const int threads = resolve_threads(options.num_threads);
  const int round = options.round_iterations > 0 ? options.round_iterations
                                                 : std::max(4, threads);
  const bool outer = options.mode == ParallelMode::kOuterLoop;
  const bool inner = options.mode == ParallelMode::kInnerLoop;
#ifdef _OPENMP
  if (inner && options.num_threads > 0) {
    omp_set_num_threads(options.num_threads);
  }
#endif

  // Outer mode: one private engine (and thus private stage tables) per
  // thread, exactly like ParallelMode::kOuterLoop in count_template.
  std::vector<DpEngine<Table>> engines;
  const int engine_count = outer ? threads : 1;
  engines.reserve(static_cast<std::size_t>(engine_count));
  for (int t = 0; t < engine_count; ++t) {
    engines.emplace_back(graph, plan.merged, k);
  }

  const std::size_t num_jobs = jobs.size();
  std::vector<JobState> states(num_jobs);
  for (std::size_t j = 0; j < num_jobs; ++j) {
    BatchJobResult& result = out.jobs[j];
    result.colorful_probability =
        colorful_probability(k, jobs[j].tmpl.size());
    result.automorphisms = automorphisms(jobs[j].tmpl);
    JobState& state = states[j];
    state.scale = 1.0 / (result.colorful_probability *
                         static_cast<double>(result.automorphisms));
    state.adaptive = jobs[j].target_relative_stderr > 0.0;
    state.target = jobs[j].target_relative_stderr;
    state.cap = state.adaptive ? jobs[j].max_iterations : jobs[j].iterations;
    state.quota = state.adaptive
                      ? std::min(state.cap,
                                 std::max(options.min_iterations, round))
                      : state.cap;
    result.adaptive = state.adaptive;
    const int root = plan.job_root[j];
    state.leaf_root = plan.merged.node(root).is_leaf();
    if (state.leaf_root) state.leaf_raw = engines.front().leaf_count(root);
  }

  const auto num_nodes = static_cast<std::size_t>(plan.merged.num_nodes());
  int done = 0;
  while (true) {
    std::vector<std::size_t> active;
    for (std::size_t j = 0; j < num_jobs; ++j) {
      if (!states[j].finished) active.push_back(j);
    }
    if (active.empty()) break;

    int checkpoint = states[active.front()].quota;
    for (std::size_t j : active) {
      checkpoint = std::min(checkpoint, states[j].quota);
    }

    // Stages this round's iterations must compute: union over active
    // jobs.  Retired jobs' exclusive stages drop out, so late rounds
    // spend every thread on what the hard templates still need.
    std::vector<char> needed(num_nodes, 0);
    std::size_t demand = 0;
    double cost_sum = 0.0;
    for (std::size_t j : active) {
      for (int id : plan.job_nodes[j]) {
        needed[static_cast<std::size_t>(id)] = 1;
      }
      demand += plan.job_stage_demand[j];
      cost_sum += plan.job_dp_cost[j];
    }
    std::size_t computed = 0;
    for (std::size_t i = 0; i < num_nodes; ++i) {
      if (needed[i] != 0 && !plan.merged.node(static_cast<int>(i)).is_leaf()) {
        ++computed;
      }
    }

    const int begin = done;
    const int end = checkpoint;
    out.seconds_per_iteration.resize(static_cast<std::size_t>(end), 0.0);
    for (std::size_t j : active) {
      out.jobs[j].per_iteration.resize(static_cast<std::size_t>(end), 0.0);
    }

    const auto run_one = [&](int iter, DpEngine<Table>& engine,
                             bool parallel_inner) {
      WallTimer timer;
      const ColorArray colors =
          random_coloring(graph, k, iteration_seed(options.seed, iter));
      engine.compute_tables(colors, parallel_inner, &needed);
      for (std::size_t j : active) {
        const double raw = states[j].leaf_root
                               ? states[j].leaf_raw
                               : engine.node_total(plan.job_root[j]);
        out.jobs[j].per_iteration[static_cast<std::size_t>(iter)] =
            raw * states[j].scale;
      }
      engine.release_all_tables();
      out.seconds_per_iteration[static_cast<std::size_t>(iter)] =
          timer.elapsed_s();
    };

#ifdef _OPENMP
    if (outer && threads > 1) {
#pragma omp parallel num_threads(threads)
      {
        DpEngine<Table>& engine =
            engines[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 1)
        for (int iter = begin; iter < end; ++iter) {
          run_one(iter, engine, false);
        }
      }
    } else
#endif
    {
      for (int iter = begin; iter < end; ++iter) {
        run_one(iter, engines.front(), inner);
      }
    }

    out.stage_requests += demand * static_cast<std::size_t>(end - begin);
    out.stage_evaluations +=
        computed * static_cast<std::size_t>(end - begin);
    for (int iter = begin; iter < end; ++iter) {
      const double share =
          out.seconds_per_iteration[static_cast<std::size_t>(iter)] /
          (cost_sum > 0.0 ? cost_sum : 1.0);
      for (std::size_t j : active) {
        out.jobs[j].seconds += share * plan.job_dp_cost[j];
      }
    }
    done = end;

    // Controller checkpoint: retire fixed jobs whose budget is spent;
    // test adaptive jobs against their target and either retire them
    // or grant another round of iterations.
    for (std::size_t j : active) {
      JobState& state = states[j];
      if (state.quota != done) continue;
      BatchJobResult& result = out.jobs[j];
      result.relative_stderr = relative_mean_stderr(result.per_iteration);
      if (!state.adaptive) {
        state.finished = true;
        continue;
      }
      if (result.relative_stderr <= state.target) {
        state.finished = true;
        result.converged = true;
      } else if (done >= state.cap) {
        state.finished = true;
        result.converged = false;
      } else {
        state.quota = std::min(state.cap, done + round);
      }
    }
  }

  out.coloring_rounds = done;
  for (std::size_t j = 0; j < num_jobs; ++j) {
    BatchJobResult& result = out.jobs[j];
    result.iterations = static_cast<int>(result.per_iteration.size());
    result.estimate = mean(result.per_iteration);
    out.iterations_total += result.iterations;
  }
}

}  // namespace

BatchResult run_batch(const Graph& graph, const std::vector<BatchJob>& jobs,
                      const BatchOptions& options) {
  WallTimer total_timer;
  const BatchPlan plan = plan_batch(graph, jobs, options);

  BatchResult result;
  result.jobs.resize(jobs.size());
  result.num_colors = plan.num_colors;
  result.seconds_plan = plan.seconds;
  result.total_stage_instances = plan.total_stage_instances;
  result.unique_stages = plan.unique_stages;

  switch (options.table) {
    case TableKind::kNaive:
      execute<NaiveTable>(graph, jobs, options, plan, result);
      break;
    case TableKind::kCompact:
      execute<CompactTable>(graph, jobs, options, plan, result);
      break;
    case TableKind::kHash:
      execute<HashTable>(graph, jobs, options, plan, result);
      break;
  }

  result.seconds_total = total_timer.elapsed_s();
  return result;
}

}  // namespace fascia::sched
