// Observability layer (DESIGN.md §10): metrics registry semantics
// (including the cross-thread shard merge), trace span nesting,
// RunReport schema round-trips, and the two load-bearing invariants —
// estimates are bit-identical with observability on or off, and the
// grouped options API (builder, validate) behaves coherently.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/counter.hpp"
#include "core/mixed_counter.hpp"
#include "core/triangle.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace fascia {
namespace {

/// Every test that flips the global switch restores "off" on exit so
/// suites stay order-independent (count_template latches the switch on
/// when options.observability.enabled and never unlatches it).
struct ObsOff {
  ~ObsOff() { obs::set_enabled(false); }
};

Graph test_graph() { return testing::complete_graph(10); }

CountOptions base_options() {
  CountOptions options;
  options.sampling.iterations = 4;
  options.sampling.seed = 42;
  options.execution.mode = ParallelMode::kSerial;
  return options;
}

// ---- metrics registry ----------------------------------------------------

TEST(ObsRegistry, CounterGaugeHistogramRecordAndRead) {
  ObsOff off;
  obs::set_enabled(true);
  obs::Registry::global().reset();
  const obs::Metric counter("test.reg.counter", obs::InstrumentKind::kCounter);
  const obs::Metric gauge("test.reg.gauge", obs::InstrumentKind::kGauge);
  const obs::Metric hist("test.reg.hist",
                         obs::InstrumentKind::kValueHistogram);

  counter.add();
  counter.add(2.0);
  gauge.set(5.0);
  gauge.set(7.0);
  hist.observe(0.5);
  hist.observe(8.0);

  EXPECT_DOUBLE_EQ(obs::Registry::global().read("test.reg.counter").value,
                   3.0);
  EXPECT_DOUBLE_EQ(obs::Registry::global().read("test.reg.gauge").value, 7.0);
  const auto snap = obs::Registry::global().read("test.reg.hist");
  EXPECT_EQ(snap.hist.count, 2u);
  EXPECT_DOUBLE_EQ(snap.hist.sum, 8.5);
  EXPECT_DOUBLE_EQ(snap.hist.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.hist.max, 8.0);
}

TEST(ObsRegistry, DisabledRecordsNothing) {
  ObsOff off;
  obs::set_enabled(true);
  obs::Registry::global().reset();
  const obs::Metric counter("test.reg.off", obs::InstrumentKind::kCounter);
  obs::set_enabled(false);
  counter.add();
  counter.add();
  obs::set_enabled(true);
  EXPECT_DOUBLE_EQ(obs::Registry::global().read("test.reg.off").value, 0.0);
}

TEST(ObsRegistry, ResetZeroesAndAbsentNameReadsZero) {
  ObsOff off;
  obs::set_enabled(true);
  const obs::Metric counter("test.reg.reset", obs::InstrumentKind::kCounter);
  counter.add(9.0);
  obs::Registry::global().reset();
  EXPECT_DOUBLE_EQ(obs::Registry::global().read("test.reg.reset").value, 0.0);
  const auto absent = obs::Registry::global().read("test.reg.never-created");
  EXPECT_DOUBLE_EQ(absent.value, 0.0);
  EXPECT_EQ(absent.hist.count, 0u);
}

#ifdef _OPENMP
TEST(ObsRegistry, ShardsMergeAcrossOpenMPThreads) {
  ObsOff off;
  obs::set_enabled(true);
  obs::Registry::global().reset();
  const obs::Metric counter("test.reg.omp.counter",
                            obs::InstrumentKind::kCounter);
  const obs::Metric hist("test.reg.omp.hist",
                         obs::InstrumentKind::kValueHistogram);
  constexpr int kRecords = 4000;
  double expected_sum = 0.0;
#pragma omp parallel for reduction(+ : expected_sum)
  for (int i = 0; i < kRecords; ++i) {
    counter.add();
    const double v = static_cast<double>(i % 7 + 1);
    hist.observe(v);
    expected_sum += v;
  }
  EXPECT_DOUBLE_EQ(obs::Registry::global().read("test.reg.omp.counter").value,
                   static_cast<double>(kRecords));
  const auto snap = obs::Registry::global().read("test.reg.omp.hist");
  EXPECT_EQ(snap.hist.count, static_cast<std::uint64_t>(kRecords));
  EXPECT_DOUBLE_EQ(snap.hist.sum, expected_sum);
  EXPECT_DOUBLE_EQ(snap.hist.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.hist.max, 7.0);
}
#endif  // _OPENMP

TEST(ObsRegistry, BucketFloorInvertsBucket) {
  for (std::size_t b = 1; b + 1 < obs::kHistogramBuckets; ++b) {
    const double floor = obs::histogram_bucket_floor(b);
    EXPECT_EQ(obs::histogram_bucket(floor), b) << "bucket " << b;
    EXPECT_EQ(obs::histogram_bucket(floor * 1.5), b) << "bucket " << b;
  }
}

TEST(ObsRegistry, ScrapeJsonListsInstruments) {
  ObsOff off;
  obs::set_enabled(true);
  obs::Registry::global().reset();
  const obs::Metric counter("test.reg.json", obs::InstrumentKind::kCounter);
  counter.add(4.0);
  const std::string text = obs::Registry::global().scrape_json().dump(2);
  EXPECT_NE(text.find("\"test.reg.json\""), std::string::npos);
  ASSERT_TRUE(obs::Json::parse(text).has_value());
}

// ---- trace spans ---------------------------------------------------------

TEST(ObsTrace, NestedSpansRecordInnerFirst) {
  ObsOff off;
  obs::set_enabled(true);
  obs::reset_trace();
  {
    FASCIA_TRACE("outer-span", 1);
    {
      FASCIA_TRACE("inner-span", 2, 3, "detail-text");
    }
  }
  EXPECT_EQ(obs::trace_recorded(), 2u);
  EXPECT_EQ(obs::trace_dropped(), 0u);
  obs::TraceEvent events[4];
  ASSERT_EQ(obs::trace_events(events, 4), 2u);
  // Spans land in the ring when they close, so the inner one is first.
  EXPECT_STREQ(events[0].name, "inner-span");
  EXPECT_EQ(events[0].arg0, 2);
  EXPECT_EQ(events[0].arg1, 3);
  EXPECT_STREQ(events[0].detail, "detail-text");
  EXPECT_STREQ(events[1].name, "outer-span");
  EXPECT_EQ(events[1].arg0, 1);
  // The outer span encloses the inner one in wall time.
  EXPECT_GE(events[1].wall_ns, events[0].wall_ns);
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  ObsOff off;
  obs::set_enabled(true);
  obs::reset_trace();
  obs::set_enabled(false);
  {
    FASCIA_TRACE("never-recorded");
  }
  EXPECT_EQ(obs::trace_recorded(), 0u);
}

TEST(ObsTrace, ChromeTraceJsonParses) {
  ObsOff off;
  obs::set_enabled(true);
  obs::reset_trace();
  {
    FASCIA_TRACE("chrome-span", 11);
  }
  const std::string text = obs::chrome_trace_json();
  const auto doc = obs::Json::parse(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("chrome-span"), std::string::npos);
}

// ---- RunReport schema ----------------------------------------------------

obs::RunReport full_report() {
  obs::RunReport report;
  report.kind = "count_template";
  report.label = "round-trip";
  report.options = {{"sampling.iterations", "4"}, {"execution.table", "compact"}};
  report.graph = {100, 400, 17, true};
  report.tmpl = {7, 2, 12};
  report.sampling.requested_iterations = 4;
  report.sampling.completed_iterations = 3;
  report.sampling.num_colors = 7;
  report.sampling.seed = 42;
  report.sampling.estimate = 123.5;
  report.sampling.relative_stderr = 0.01;
  report.sampling.colorful_probability = 0.06;
  report.sampling.automorphisms = 2;
  report.sampling.trajectory = {120.0, 122.0, 123.5};
  report.timing.total_seconds = 1.25;
  report.timing.plan_seconds = 0.0625;
  report.timing.reorder_seconds = 0.25;
  report.timing.per_iteration_seconds = {0.5, 0.25, 0.25};
  report.memory.planned_peak_bytes = 1 << 20;
  report.memory.observed_peak_bytes = 1 << 19;
  report.memory.table = "compact";
  report.memory.degradations = {"hash-fallback"};
  report.threads = {"hybrid", 2, 4, 8};
  report.run.status = "deadline";
  report.run.resumed = true;
  report.run.resumed_iterations = 2;
  report.run.checkpoints_written = 1;
  obs::ReportStage stage;
  stage.node = 3;
  stage.kernel = "pair";
  stage.table = "compact";
  stage.passes = 4;
  stage.seconds = 0.125;
  stage.candidates = 100.0;
  stage.survivors = 60.0;
  stage.macs = 4000.0;
  stage.parent_size = 2;
  stage.active_size = 1;
  report.stages.push_back(stage);
  obs::ReportJob job;
  job.name = "U7-1";
  job.estimate = 123.5;
  job.relative_stderr = 0.01;
  job.iterations = 3;
  job.converged = true;
  report.jobs.push_back(job);
  return report;
}

TEST(ObsReport, RoundTripsByteIdentically) {
  const obs::RunReport report = full_report();
  const std::string text = report.to_json_string();
  obs::RunReport parsed;
  std::string error;
  ASSERT_TRUE(obs::RunReport::from_json_string(text, &parsed, &error))
      << error;
  EXPECT_EQ(parsed.to_json_string(), text);
}

TEST(ObsReport, WrongSchemaVersionRejected) {
  std::string text = full_report().to_json_string();
  const std::string want = "\"schema_version\": " +
                           std::to_string(obs::kSchemaVersion);
  const auto at = text.find(want);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, want.size(), "\"schema_version\": 999");
  obs::RunReport parsed;
  std::string error;
  EXPECT_FALSE(obs::RunReport::from_json_string(text, &parsed, &error));
  EXPECT_FALSE(error.empty());
}

// ---- reports attached to real runs ---------------------------------------

TEST(ObsReport, CountTemplateReportMatchesResult) {
  ObsOff off;
  const Graph g = test_graph();
  const TreeTemplate tree = TreeTemplate::path(5);
  CountOptions options = base_options();
  options.observability.enabled = true;
  const CountResult result = count_template(g, tree, options);

  ASSERT_NE(result.report, nullptr);
  const obs::RunReport& report = *result.report;
  EXPECT_EQ(report.kind, "count_template");
  EXPECT_DOUBLE_EQ(report.sampling.estimate, result.estimate);
  EXPECT_EQ(report.sampling.completed_iterations, 4);
  EXPECT_EQ(report.graph.vertices, 10);
  EXPECT_EQ(report.tmpl.vertices, 5);
  EXPECT_EQ(report.sampling.trajectory, result.running_estimates());
  EXPECT_EQ(report.run.status, "completed");
  // collect_stages defaults on: the DP's per-stage detail is present
  // and covers every subtemplate pass.
  EXPECT_FALSE(report.stages.empty());
  int passes = 0;
  for (const obs::ReportStage& stage : report.stages) {
    EXPECT_FALSE(stage.kernel.empty());
    EXPECT_EQ(stage.table, "compact");
    passes += stage.passes;
  }
  EXPECT_GT(passes, 0);
  // The outcome accessors see the same document.
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.status(), RunStatus::kCompleted);
  EXPECT_NE(result.report_json().find("\"schema_version\""),
            std::string::npos);
}

TEST(ObsReport, EstimatesBitIdenticalObsOnAndOff) {
  ObsOff off;
  const Graph g = test_graph();
  const TreeTemplate tree = TreeTemplate::star(5);
  CountOptions options = base_options();

  obs::set_enabled(false);
  const CountResult plain = count_template(g, tree, options);

  CountOptions observed = options;
  observed.observability.enabled = true;
  const CountResult traced = count_template(g, tree, observed);

  ASSERT_EQ(plain.per_iteration.size(), traced.per_iteration.size());
  for (std::size_t i = 0; i < plain.per_iteration.size(); ++i) {
    EXPECT_EQ(plain.per_iteration[i], traced.per_iteration[i]) << i;
  }
  EXPECT_EQ(plain.estimate, traced.estimate);
}

TEST(ObsReport, EstimatesBitIdenticalAcrossModesWithObsOn) {
  ObsOff off;
  const Graph g = test_graph();
  const TreeTemplate tree = TreeTemplate::path(6);
  std::vector<CountResult> runs;
  for (ParallelMode mode : {ParallelMode::kSerial, ParallelMode::kInnerLoop,
                            ParallelMode::kOuterLoop}) {
    CountOptions options = base_options();
    options.execution.mode = mode;
    options.observability.enabled = true;
    runs.push_back(count_template(g, tree, options));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[0].per_iteration.size(), runs[r].per_iteration.size());
    for (std::size_t i = 0; i < runs[0].per_iteration.size(); ++i) {
      EXPECT_EQ(runs[0].per_iteration[i], runs[r].per_iteration[i])
          << "mode " << r << " iteration " << i;
    }
    // The attached reports agree on everything but wall time.
    ASSERT_NE(runs[r].report, nullptr);
    EXPECT_EQ(runs[0].report->sampling.trajectory,
              runs[r].report->sampling.trajectory);
    EXPECT_EQ(runs[0].report->sampling.estimate,
              runs[r].report->sampling.estimate);
  }
}

TEST(ObsReport, CheckpointWritesMatchRegistryCounter) {
  ObsOff off;
  obs::set_enabled(true);
  obs::Registry::global().reset();
  const std::string path = ::testing::TempDir() + "obs_ckpt.bin";
  const Graph g = test_graph();
  const TreeTemplate tree = TreeTemplate::path(5);
  CountOptions options = base_options();
  options.sampling.iterations = 6;
  options.run.checkpoint_path = path;
  options.run.checkpoint_every = 2;
  options.observability.enabled = true;
  const CountResult result = count_template(g, tree, options);

  ASSERT_NE(result.report, nullptr);
  EXPECT_GT(result.report->run.checkpoints_written, 0);
  EXPECT_DOUBLE_EQ(
      obs::Registry::global().read("checkpoint.writes").value,
      static_cast<double>(result.report->run.checkpoints_written));
  std::remove(path.c_str());
}

// ---- options API: builder, validate, deprecated spellings ----------------

TEST(ObsOptions, BuilderBuildsAndValidates) {
  const CountOptions options = CountOptions::builder()
                                   .iterations(8)
                                   .colors(6)
                                   .seed(99)
                                   .table(TableKind::kHash)
                                   .mode(ParallelMode::kHybrid)
                                   .threads(4)
                                   .outer_copies(2)
                                   .label("builder-test")
                                   .build();
  EXPECT_EQ(options.sampling.iterations, 8);
  EXPECT_EQ(options.sampling.num_colors, 6);
  EXPECT_EQ(options.sampling.seed, 99u);
  EXPECT_EQ(options.execution.table, TableKind::kHash);
  EXPECT_EQ(options.execution.mode, ParallelMode::kHybrid);
  EXPECT_EQ(options.execution.outer_copies, 2);
  EXPECT_EQ(options.observability.label, "builder-test");
}

TEST(ObsOptions, ValidateRejectsIncoherentCombinations) {
  // outer_copies pinned without hybrid mode.
  EXPECT_THROW(CountOptions::builder()
                   .mode(ParallelMode::kInnerLoop)
                   .outer_copies(2)
                   .build(),
               Error);
  // outer_copies beyond the pinned thread count.
  EXPECT_THROW(CountOptions::builder()
                   .mode(ParallelMode::kHybrid)
                   .threads(2)
                   .outer_copies(4)
                   .build(),
               Error);
  // resume without a checkpoint path.
  {
    CountOptions options;
    options.run.resume = true;
    EXPECT_THROW(options.validate(), Error);
  }
  // negative thread count.
  EXPECT_THROW(CountOptions::builder().threads(-1).build(), Error);
}

TEST(ObsOptions, GroupedOptionsCopyIndependently) {
  // The flat [[deprecated]] alias spellings are gone; grouped options
  // are plain value types whose copies are fully independent.
  CountOptions options;
  options.sampling.iterations = 5;
  CountOptions copy = options;
  copy.sampling.iterations = 9;
  EXPECT_EQ(copy.sampling.iterations, 9);
  EXPECT_EQ(options.sampling.iterations, 5);
}

// ---- entry points that must reject reorder -------------------------------

TEST(ObsOptions, TrianglesRejectReorder) {
  const Graph g = test_graph();
  CountOptions options = base_options();
  options.execution.reorder = ReorderMode::kDegree;
  EXPECT_THROW(count_triangles(g, options), Error);
}

TEST(ObsOptions, NonTreeMixedRejectsReorder) {
  const Graph g = test_graph();
  // A paw (triangle + pendant edge) is not a tree, so the request
  // would reach the reorder-less mixed DP.
  const MixedTemplate paw =
      MixedTemplate::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  CountOptions options = base_options();
  options.execution.reorder = ReorderMode::kBfs;
  EXPECT_THROW(count_mixed_template(g, paw, options), Error);
}

// ---- unified graphlet_degrees signature ----------------------------------

TEST(ObsOptions, GraphletDegreesOptionsOverloadMatchesExplicitRoot) {
  ObsOff off;
  const Graph g = test_graph();
  const TreeTemplate tree = TreeTemplate::star(4);
  CountOptions options = base_options();

  const CountResult explicit_root = graphlet_degrees(g, tree, 0, options);
  CountOptions rooted = options;
  rooted.root = 0;
  const CountResult via_options = graphlet_degrees(g, tree, rooted);

  EXPECT_EQ(explicit_root.vertex_counts, via_options.vertex_counts);
  EXPECT_EQ(explicit_root.estimate, via_options.estimate);
  ASSERT_NE(via_options.report, nullptr);
  EXPECT_EQ(via_options.report->kind, "graphlet_degrees");
}

TEST(ObsOptions, GraphletDegreesOptionsOverloadRequiresRoot) {
  const Graph g = test_graph();
  const TreeTemplate tree = TreeTemplate::star(4);
  EXPECT_THROW(graphlet_degrees(g, tree, base_options()), Error);
}

}  // namespace
}  // namespace fascia
