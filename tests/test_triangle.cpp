#include "core/triangle.hpp"

#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/labels.hpp"
#include "helpers.hpp"

namespace fascia {
namespace {

TEST(Triangle, ExactOnKnownGraphs) {
  EXPECT_DOUBLE_EQ(exact_triangle_count(testing::triangle_graph()), 1.0);
  EXPECT_DOUBLE_EQ(exact_triangle_count(testing::complete_graph(4)), 4.0);
  EXPECT_DOUBLE_EQ(exact_triangle_count(testing::complete_graph(6)), 20.0);
  EXPECT_DOUBLE_EQ(exact_triangle_count(testing::path_graph(10)), 0.0);
  EXPECT_DOUBLE_EQ(exact_triangle_count(testing::cycle_graph(4)), 0.0);
  EXPECT_DOUBLE_EQ(exact_triangle_count(testing::star_graph(8)), 0.0);
}

TEST(Triangle, EstimateConvergesToExact) {
  const Graph g = largest_component(erdos_renyi_gnm(80, 400, 13));
  const double exact = exact_triangle_count(g);
  ASSERT_GT(exact, 0.0);
  CountOptions options;
  options.sampling.iterations = 3000;
  options.sampling.seed = 5;
  const CountResult result = count_triangles(g, options);
  EXPECT_NEAR(result.estimate, exact, exact * 0.1);
  EXPECT_EQ(result.automorphisms, 6u);
  EXPECT_NEAR(result.colorful_probability, 6.0 / 27.0, 1e-12);
}

TEST(Triangle, DeterministicInSeed) {
  const Graph g = largest_component(erdos_renyi_gnm(60, 250, 1));
  CountOptions options;
  options.sampling.iterations = 5;
  const auto a = count_triangles(g, options);
  const auto b = count_triangles(g, options);
  EXPECT_EQ(a.per_iteration, b.per_iteration);
}

TEST(Triangle, MoreColorsRaiseColorfulProbability) {
  const Graph g = testing::complete_graph(5);
  CountOptions options;
  options.sampling.iterations = 2000;
  options.sampling.num_colors = 6;
  const CountResult result = count_triangles(g, options);
  EXPECT_GT(result.colorful_probability, 6.0 / 27.0);
  EXPECT_NEAR(result.estimate, 10.0, 1.5);  // K5 has 10 triangles
}

TEST(Triangle, LabeledCounting) {
  // Two labeled triangles in a 6-vertex graph.
  Graph g = build_graph(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  g.set_labels({0, 1, 1, 0, 0, 1}, 2);

  // Label multiset {0,1,1}: matches triangle 0-1-2 (0,1,1) and triangle
  // 3-4-5 has labels (0,0,1) — only when asking for {0,0,1}.
  EXPECT_DOUBLE_EQ(exact_triangle_count(g, {0, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(exact_triangle_count(g, {0, 0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(exact_triangle_count(g, {1, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(exact_triangle_count(g), 2.0);

  CountOptions options;
  options.sampling.iterations = 4000;
  const CountResult estimated = count_triangles(g, options, {0, 1, 1});
  EXPECT_NEAR(estimated.estimate, 1.0, 0.25);
  EXPECT_EQ(estimated.automorphisms, 2u);  // aab multiset
}

TEST(Triangle, LabelValidation) {
  Graph unlabeled = testing::complete_graph(4);
  EXPECT_THROW(exact_triangle_count(unlabeled, {0, 1, 2}),
               std::invalid_argument);
  Graph labeled = testing::complete_graph(4);
  labeled.set_labels({0, 0, 0, 0}, 1);
  EXPECT_THROW(exact_triangle_count(labeled, {0, 0}), std::invalid_argument);
  CountOptions options;
  options.sampling.num_colors = 2;
  EXPECT_THROW(count_triangles(labeled, options), std::invalid_argument);
}

}  // namespace
}  // namespace fascia
