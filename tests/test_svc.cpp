// Counting service (src/svc/): graph registry semantics (LRU eviction
// under a byte budget, running jobs surviving eviction), per-job
// cancellation isolation, concurrent multi-session use of the shared
// obs registry, priority scheduling with preemption, and the
// checkpoint-namespacing contract that makes one work directory safe
// for concurrent jobs.  The recurring acceptance bar: everything the
// service does must be invisible in the numbers — a job through the
// service is bit-identical to the direct library call.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/counter.hpp"
#include "graph/builder.hpp"
#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "run/checkpoint.hpp"
#include "svc/service.hpp"
#include "treelet/catalog.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fascia {
namespace {

std::string temp_dir(const char* tag) {
  std::string path = ::testing::TempDir() + "fascia_svc_" + tag;
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

svc::JobSpec count_spec(const std::string& graph, const TreeTemplate& tmpl,
                        int iterations, std::uint64_t seed = 7) {
  svc::JobSpec spec;
  spec.kind = svc::JobKind::kCount;
  spec.graph = graph;
  spec.tmpl = tmpl;
  spec.options.sampling.iterations = iterations;
  spec.options.sampling.seed = seed;
  spec.options.execution.mode = ParallelMode::kSerial;
  return spec;
}

// ---- registry --------------------------------------------------------------

TEST(SvcRegistry, PutGetEraseRoundTrip) {
  svc::GraphRegistry registry;
  EXPECT_EQ(registry.get("g"), nullptr);
  registry.put("g", erdos_renyi_gnm(100, 300, 1));
  auto graph = registry.get("g");
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(graph->num_vertices(), 100);
  EXPECT_TRUE(registry.contains("g"));
  EXPECT_TRUE(registry.erase("g"));
  EXPECT_FALSE(registry.contains("g"));
  EXPECT_FALSE(registry.erase("g"));
  // The handle we took out survives the erase.
  EXPECT_EQ(graph->num_vertices(), 100);
}

TEST(SvcRegistry, LruEvictionUnderBytePressure) {
  const Graph probe = erdos_renyi_gnm(400, 1200, 1);
  // Budget fits two graphs of this size but not three.
  svc::GraphRegistry registry(probe.bytes() * 2 + probe.bytes() / 2);
  registry.put("a", erdos_renyi_gnm(400, 1200, 1));
  registry.put("b", erdos_renyi_gnm(400, 1200, 2));
  EXPECT_TRUE(registry.contains("a"));
  EXPECT_TRUE(registry.contains("b"));

  // Touch "a" so "b" is the least recently used, then overflow.
  ASSERT_NE(registry.get("a"), nullptr);
  registry.put("c", erdos_renyi_gnm(400, 1200, 3));
  EXPECT_TRUE(registry.contains("a"));
  EXPECT_FALSE(registry.contains("b"));
  EXPECT_TRUE(registry.contains("c"));
  EXPECT_GE(registry.stats().evictions, 1u);
  EXPECT_LE(registry.stats().resident_bytes, registry.stats().budget_bytes);
}

TEST(SvcRegistry, EvictedGraphStaysAliveForHolders) {
  const Graph probe = erdos_renyi_gnm(500, 1500, 1);
  svc::GraphRegistry registry(probe.bytes() + probe.bytes() / 2);
  auto held = registry.put("old", erdos_renyi_gnm(500, 1500, 1));
  registry.put("new1", erdos_renyi_gnm(500, 1500, 2));
  registry.put("new2", erdos_renyi_gnm(500, 1500, 3));
  EXPECT_FALSE(registry.contains("old"));
  // The shared_ptr keeps the evicted graph fully usable.
  EXPECT_EQ(held->num_vertices(), 500);
  EXPECT_GT(held->num_edges(), 0);
}

TEST(SvcRegistry, PartitionCacheHitsOnRepeat) {
  svc::GraphRegistry registry;
  const TreeTemplate tmpl = catalog_entry("U7-2").tree;
  auto first = registry.partition_of(tmpl, PartitionStrategy::kOneAtATime,
                                     true, -1);
  auto second = registry.partition_of(tmpl, PartitionStrategy::kOneAtATime,
                                      true, -1);
  EXPECT_EQ(first.get(), second.get());  // same cached object
  // A different root is a different plan.
  auto rooted = registry.partition_of(tmpl, PartitionStrategy::kOneAtATime,
                                      true, 0);
  EXPECT_NE(first.get(), rooted.get());
  EXPECT_GE(registry.stats().hits, 1u);
}

TEST(SvcRegistry, ReorderPermutationCachedPerMode) {
  svc::GraphRegistry registry;
  registry.put("g", chung_lu(600, 2400, 2.3, 60, 5));
  auto degree1 = registry.reorder_of("g", ReorderMode::kDegree);
  ASSERT_NE(degree1, nullptr);
  EXPECT_EQ(degree1->size(), 600);
  auto degree2 = registry.reorder_of("g", ReorderMode::kDegree);
  EXPECT_EQ(degree1.get(), degree2.get());
  EXPECT_EQ(registry.reorder_of("g", ReorderMode::kNone), nullptr);
  EXPECT_EQ(registry.reorder_of("absent", ReorderMode::kDegree), nullptr);
}

// ---- service: results match the direct library call ------------------------

TEST(SvcService, CountJobBitIdenticalToDirectCall) {
  const Graph graph = erdos_renyi_gnm(900, 3600, 11);
  const TreeTemplate tmpl = catalog_entry("U5-2").tree;

  CountOptions direct;
  direct.sampling.iterations = 6;
  direct.sampling.seed = 7;
  direct.execution.mode = ParallelMode::kSerial;
  const CountResult expected = count_template(graph, tmpl, direct);

  svc::Service service({});
  service.registry().put("g", erdos_renyi_gnm(900, 3600, 11));
  svc::Session session(service);
  const CountResult got = session.count(count_spec("g", tmpl, 6));

  ASSERT_EQ(got.per_iteration.size(), expected.per_iteration.size());
  for (std::size_t i = 0; i < expected.per_iteration.size(); ++i) {
    EXPECT_EQ(got.per_iteration[i], expected.per_iteration[i]) << i;
  }
  EXPECT_EQ(got.estimate, expected.estimate);
  EXPECT_EQ(got.relative_stderr, expected.relative_stderr);
}

TEST(SvcService, GddJobMatchesDirectGraphletDegrees) {
  const Graph graph = erdos_renyi_gnm(300, 1200, 3);
  const TreeTemplate tmpl = catalog_entry("U5-2").tree;
  const int orbit = u52_central_vertex();

  CountOptions direct;
  direct.sampling.iterations = 4;
  direct.sampling.seed = 5;
  direct.execution.mode = ParallelMode::kSerial;
  direct.root = orbit;
  const CountResult expected = graphlet_degrees(graph, tmpl, orbit, direct);

  svc::Service service({});
  service.registry().put("g", erdos_renyi_gnm(300, 1200, 3));
  svc::Session session(service);
  svc::JobSpec spec = count_spec("g", tmpl, 4, 5);
  spec.kind = svc::JobKind::kGdd;
  spec.options.root = orbit;
  const CountResult got = session.count(std::move(spec));

  EXPECT_EQ(got.estimate, expected.estimate);
  ASSERT_EQ(got.vertex_counts.size(), expected.vertex_counts.size());
  for (std::size_t v = 0; v < expected.vertex_counts.size(); ++v) {
    ASSERT_EQ(got.vertex_counts[v], expected.vertex_counts[v]) << v;
  }
}

TEST(SvcService, BatchJobMatchesDirectRunBatch) {
  const Graph graph = erdos_renyi_gnm(500, 2000, 17);
  std::vector<sched::BatchJob> jobs;
  for (const char* name : {"U5-1", "U5-2"}) {
    sched::BatchJob job;
    job.tmpl = catalog_entry(name).tree;
    job.iterations = 4;
    jobs.push_back(std::move(job));
  }
  sched::BatchOptions options;
  options.seed = 23;
  options.mode = ParallelMode::kSerial;
  const sched::BatchResult expected = sched::run_batch(graph, jobs, options);

  svc::Service service({});
  service.registry().put("g", erdos_renyi_gnm(500, 2000, 17));
  svc::Session session(service);
  svc::JobSpec spec;
  spec.graph = "g";
  spec.batch_jobs = jobs;
  spec.batch_options = options;
  spec.preemptible = false;
  const sched::BatchResult got = session.run_batch(std::move(spec));

  ASSERT_EQ(got.jobs.size(), expected.jobs.size());
  for (std::size_t j = 0; j < expected.jobs.size(); ++j) {
    EXPECT_EQ(got.jobs[j].estimate, expected.jobs[j].estimate) << j;
    EXPECT_EQ(got.jobs[j].iterations, expected.jobs[j].iterations) << j;
  }
  EXPECT_EQ(got.estimate, expected.estimate);
}

// ---- service: lifecycle, cancellation, admission ---------------------------

TEST(SvcService, SubmitRejectsUnknownGraphAndBadSpecs) {
  svc::Service service({});
  EXPECT_THROW(service.submit(count_spec("nope", TreeTemplate::path(3), 1)),
               Error);

  service.registry().put("g", erdos_renyi_gnm(50, 100, 1));
  svc::JobSpec gdd = count_spec("g", TreeTemplate::path(4), 1);
  gdd.kind = svc::JobKind::kGdd;  // missing orbit root
  EXPECT_THROW(service.submit(std::move(gdd)), Error);

  svc::JobSpec batch;
  batch.kind = svc::JobKind::kBatch;
  batch.graph = "g";  // empty batch_jobs
  EXPECT_THROW(service.submit(std::move(batch)), Error);
}

TEST(SvcService, CancellingOneJobLeavesAnotherUntouched) {
  svc::Service::Config config;
  config.workers = 2;
  svc::Service service(config);
  service.registry().put("g", erdos_renyi_gnm(2500, 20000, 3));

  // Long victim: enough iterations that cancel lands mid-run.
  svc::JobSpec victim = count_spec("g", catalog_entry("U7-2").tree, 4000);
  const svc::JobId victim_id = service.submit(std::move(victim));
  svc::JobSpec bystander = count_spec("g", catalog_entry("U5-1").tree, 5);
  const svc::JobId bystander_id = service.submit(std::move(bystander));

  EXPECT_TRUE(service.cancel(victim_id));
  const svc::JobInfo victim_done = service.wait(victim_id);
  const svc::JobInfo bystander_done = service.wait(bystander_id);

  EXPECT_EQ(victim_done.state, svc::JobState::kCancelled);
  ASSERT_EQ(bystander_done.state, svc::JobState::kCompleted);
  const CountResult result = service.count_result(bystander_id);
  EXPECT_EQ(result.run.completed_iterations, 5);
  EXPECT_EQ(result.status(), RunStatus::kCompleted);
}

TEST(SvcService, AdmissionRejectsJobsThatCanNeverFit) {
  svc::Service::Config config;
  config.memory_budget_bytes = 1024;  // absurdly tight
  svc::Service service(config);
  service.registry().put("g", erdos_renyi_gnm(5000, 20000, 1));
  svc::JobSpec spec = count_spec("g", catalog_entry("U10-2").tree, 1);
  EXPECT_THROW(service.submit(std::move(spec)), Error);
}

TEST(SvcService, AdmissionRequotesSuccinctInsteadOfRejecting) {
  const TreeTemplate tmpl = catalog_entry("U7-1").tree;
  const Graph graph = erdos_renyi_gnm(5000, 20000, 1);

  // Learn both quotes from an unbounded service: admission records the
  // modeled peak for the requested encoding in JobInfo.
  std::size_t compact_quote = 0;
  std::size_t succinct_quote = 0;
  {
    svc::Service service({});
    service.registry().put("g", erdos_renyi_gnm(5000, 20000, 1));
    svc::JobSpec compact = count_spec("g", tmpl, 2);
    compact.options.execution.table = TableKind::kCompact;
    svc::JobSpec succinct = count_spec("g", tmpl, 2);
    succinct.options.execution.table = TableKind::kSuccinct;
    const svc::JobId a = service.submit(std::move(compact));
    const svc::JobId b = service.submit(std::move(succinct));
    compact_quote = service.info(a).estimated_peak_bytes;
    succinct_quote = service.info(b).estimated_peak_bytes;
    service.wait(a);
    service.wait(b);
  }
  ASSERT_LT(succinct_quote, compact_quote);

  // Under a budget only the succinct encoding satisfies, a compact job
  // must be admitted by re-quoting — the run layer's ladder would move
  // to succinct anyway — with the spec rewritten so the run uses the
  // encoding it was admitted under, and the numbers must match the
  // direct succinct call bit for bit.
  CountOptions direct;
  direct.sampling.iterations = 2;
  direct.sampling.seed = 7;
  direct.execution.mode = ParallelMode::kSerial;
  direct.execution.table = TableKind::kSuccinct;
  const CountResult expected = count_template(graph, tmpl, direct);

  svc::Service::Config config;
  config.memory_budget_bytes = (succinct_quote + compact_quote) / 2;
  svc::Service service(config);
  service.registry().put("g", erdos_renyi_gnm(5000, 20000, 1));
  svc::JobSpec spec = count_spec("g", tmpl, 2);
  spec.options.execution.table = TableKind::kCompact;
  const svc::JobId id = service.submit(std::move(spec));
  EXPECT_EQ(service.info(id).estimated_peak_bytes, succinct_quote);
  EXPECT_EQ(service.wait(id).state, svc::JobState::kCompleted);
  const CountResult got = service.count_result(id);
  EXPECT_EQ(got.run.table_used, TableKind::kSuccinct);
  ASSERT_EQ(got.per_iteration.size(), expected.per_iteration.size());
  for (std::size_t i = 0; i < expected.per_iteration.size(); ++i) {
    EXPECT_EQ(got.per_iteration[i], expected.per_iteration[i]) << i;
  }
  EXPECT_EQ(got.estimate, expected.estimate);
}

TEST(SvcService, AdmissionQuotesSpmmWorkspaceOnTopOfTables) {
  // The SpMM kernel family carries a dense multivector working set
  // per engine copy on top of the table peak; admission must price it
  // (otherwise a fleet of SpMM jobs admitted on table-only quotes
  // blows the budget), and the job must still complete with numbers
  // bit-identical to the frontier family.
  const TreeTemplate tmpl = catalog_entry("U7-1").tree;

  svc::Service service({});
  service.registry().put("g", erdos_renyi_gnm(5000, 20000, 1));
  svc::JobSpec frontier_spec = count_spec("g", tmpl, 2);
  svc::JobSpec spmm_spec = count_spec("g", tmpl, 2);
  spmm_spec.options.execution.kernel_family = KernelFamily::kSpmm;
  const svc::JobId a = service.submit(std::move(frontier_spec));
  const svc::JobId b = service.submit(std::move(spmm_spec));
  const std::size_t frontier_quote = service.info(a).estimated_peak_bytes;
  const std::size_t spmm_quote = service.info(b).estimated_peak_bytes;
  EXPECT_GT(spmm_quote, frontier_quote);

  EXPECT_EQ(service.wait(a).state, svc::JobState::kCompleted);
  EXPECT_EQ(service.wait(b).state, svc::JobState::kCompleted);
  const CountResult frontier_result = service.count_result(a);
  const CountResult spmm_result = service.count_result(b);
  ASSERT_EQ(spmm_result.per_iteration.size(),
            frontier_result.per_iteration.size());
  for (std::size_t i = 0; i < frontier_result.per_iteration.size(); ++i) {
    EXPECT_EQ(spmm_result.per_iteration[i], frontier_result.per_iteration[i])
        << i;
  }
  EXPECT_EQ(spmm_result.estimate, frontier_result.estimate);
}

TEST(SvcService, ShutdownCancelsQueuedJobs) {
  svc::Service::Config config;
  config.workers = 1;
  auto service = std::make_unique<svc::Service>(config);
  service->registry().put("g", erdos_renyi_gnm(2500, 20000, 3));
  const svc::JobId running =
      service->submit(count_spec("g", catalog_entry("U7-2").tree, 4000));
  const svc::JobId queued =
      service->submit(count_spec("g", catalog_entry("U5-1").tree, 3));
  service->shutdown();
  EXPECT_TRUE(job_state_terminal(service->info(running).state));
  EXPECT_TRUE(job_state_terminal(service->info(queued).state));
  service.reset();  // double-shutdown via destructor must be safe
}

// ---- preemption ------------------------------------------------------------

TEST(SvcService, PreemptedBatchJobResumesToBitIdenticalResult) {
  const int kIterations = 60;
  const TreeTemplate tmpl = catalog_entry("U10-2").tree;  // k = 10 >= 8
  const Graph graph = erdos_renyi_gnm(600, 2400, 19);

  CountOptions direct;
  direct.sampling.iterations = kIterations;
  direct.sampling.seed = 31;
  direct.execution.mode = ParallelMode::kSerial;
  const CountResult expected = count_template(graph, tmpl, direct);

  svc::Service::Config config;
  config.workers = 1;  // force contention
  config.work_dir = temp_dir("preempt");
  svc::Service service(config);
  service.registry().put("g", erdos_renyi_gnm(600, 2400, 19));

  svc::JobSpec low = count_spec("g", tmpl, kIterations, 31);
  low.priority = svc::Priority::kBatch;
  low.preemptible = true;
  low.options.run.checkpoint_every = 1;  // checkpoint at every boundary
  const svc::JobId low_id = service.submit(std::move(low));

  // Wait until the batch job has written its first checkpoint before
  // demanding the worker: a preemption landing before any checkpoint
  // restarts from scratch (still bit-identical, but run.resumed would
  // be false and the resume path untested).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool checkpointed = false;
  while (!checkpointed && std::chrono::steady_clock::now() < deadline) {
    for (const auto& entry :
         std::filesystem::directory_iterator(config.work_dir)) {
      checkpointed =
          checkpointed || entry.path().extension() == ".ckpt";
    }
    if (!checkpointed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  ASSERT_TRUE(checkpointed) << "batch job never wrote a checkpoint";
  svc::JobSpec high = count_spec("g", catalog_entry("U5-1").tree, 3);
  high.priority = svc::Priority::kInteractive;
  const svc::JobId high_id = service.submit(std::move(high));

  const svc::JobInfo high_done = service.wait(high_id);
  EXPECT_EQ(high_done.state, svc::JobState::kCompleted);

  const svc::JobInfo low_done = service.wait(low_id);
  ASSERT_EQ(low_done.state, svc::JobState::kCompleted);
  EXPECT_GE(low_done.preemptions, 1);  // it really was preempted

  const CountResult got = service.count_result(low_id);
  EXPECT_TRUE(got.run.resumed);
  ASSERT_EQ(got.per_iteration.size(), expected.per_iteration.size());
  for (std::size_t i = 0; i < expected.per_iteration.size(); ++i) {
    ASSERT_EQ(got.per_iteration[i], expected.per_iteration[i]) << i;
  }
  EXPECT_EQ(got.estimate, expected.estimate);
}

// ---- checkpoint namespacing ------------------------------------------------

TEST(SvcCheckpoint, DirectoryPathsResolveToFingerprintedFiles) {
  const std::string dir = temp_dir("resolve");
  const std::string a =
      run::resolve_checkpoint_path(dir, run::Checkpoint::kKindCount, 0x1234);
  const std::string b =
      run::resolve_checkpoint_path(dir, run::Checkpoint::kKindCount, 0x9999);
  const std::string c =
      run::resolve_checkpoint_path(dir, run::Checkpoint::kKindBatch, 0x1234);
  EXPECT_NE(a, b);  // different fingerprints never collide
  EXPECT_NE(a, c);  // nor do count and batch checkpoints
  EXPECT_EQ(a.rfind(dir, 0), 0u) << "resolved inside the directory";
  EXPECT_NE(a.find("fascia_count_"), std::string::npos);
  EXPECT_NE(c.find("fascia_batch_"), std::string::npos);

  // A plain file path (existing or not) passes through untouched.
  EXPECT_EQ(run::resolve_checkpoint_path("/tmp/x.ckpt",
                                         run::Checkpoint::kKindCount, 1),
            "/tmp/x.ckpt");
  EXPECT_EQ(
      run::resolve_checkpoint_path("", run::Checkpoint::kKindCount, 1), "");
}

TEST(SvcCheckpoint, ConcurrentJobsShareAWorkDirWithoutCollisions) {
  const std::string dir = temp_dir("shared");
  const Graph graph = erdos_renyi_gnm(400, 1600, 3);

  auto run_with_checkpoint = [&](const std::string& name,
                                 std::uint64_t seed) {
    CountOptions options;
    options.sampling.iterations = 8;
    options.sampling.seed = seed;
    options.execution.mode = ParallelMode::kSerial;
    options.run.checkpoint_path = dir;  // a DIRECTORY, not a file
    options.run.checkpoint_every = 2;
    return count_template(graph, catalog_entry(name).tree, options);
  };
  const CountResult a = run_with_checkpoint("U5-1", 3);
  const CountResult b = run_with_checkpoint("U5-2", 4);
  EXPECT_GT(a.run.checkpoints_written, 0);
  EXPECT_GT(b.run.checkpoints_written, 0);

  // Two distinct checkpoint files: the jobs never overwrote each other.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_NE(entry.path().filename().string().find("fascia_count_"),
              std::string::npos);
    ++files;
  }
  EXPECT_EQ(files, 2u);

  // And each job resumes from ITS file despite the shared directory.
  CountOptions resume;
  resume.sampling.iterations = 8;
  resume.sampling.seed = 3;
  resume.execution.mode = ParallelMode::kSerial;
  resume.run.checkpoint_path = dir;
  resume.run.resume = true;
  const CountResult resumed =
      count_template(graph, catalog_entry("U5-1").tree, resume);
  EXPECT_TRUE(resumed.run.resumed);
  EXPECT_EQ(resumed.estimate, a.estimate);
}

// ---- dynamic graphs: mutate_graph / recount --------------------------------

/// One removable edge plus one insertable absent pair, valid against
/// the CURRENT state of `g` (regenerate after every apply).
GraphDelta simple_delta(const Graph& g, unsigned salt) {
  Xoshiro256 rng(1234 + salt);
  const EdgeList edges = edge_list(g);
  GraphDelta delta;
  const Edge gone =
      edges[rng.bounded(static_cast<std::uint32_t>(edges.size()))];
  delta.remove(gone.first, gone.second);
  const auto n = static_cast<std::uint32_t>(g.num_vertices());
  while (true) {
    const VertexId u = static_cast<VertexId>(rng.bounded(n));
    const VertexId v = static_cast<VertexId>(rng.bounded(n));
    if (u == v || g.has_edge(u, v)) continue;
    if (std::min(u, v) == gone.first && std::max(u, v) == gone.second) {
      continue;
    }
    delta.insert(u, v);
    break;
  }
  return delta;
}

svc::JobSpec incremental_spec(const std::string& graph,
                              const TreeTemplate& tmpl, int iterations,
                              std::uint64_t seed = 7) {
  svc::JobSpec spec = count_spec(graph, tmpl, iterations, seed);
  spec.options.execution.incremental = true;
  return spec;
}

svc::JobSpec recount_spec(svc::JobId of) {
  svc::JobSpec spec;
  spec.kind = svc::JobKind::kRecount;
  spec.recount_of = of;
  return spec;
}

TEST(SvcDelta, RecountAfterMutationMatchesDirectFullCount) {
  const TreeTemplate tmpl = catalog_entry("U5-1").tree;
  Graph mirror = erdos_renyi_gnm(800, 3200, 21);

  svc::Service service({});
  service.registry().put("g", erdos_renyi_gnm(800, 3200, 21));

  const svc::JobId base_id =
      service.submit(incremental_spec("g", tmpl, 5, 13));
  ASSERT_EQ(service.wait(base_id).state, svc::JobState::kCompleted);
  EXPECT_EQ(service.health().retained_runs, 1u);
  EXPECT_EQ(service.graph_version("g"), 0u);

  const GraphDelta delta = simple_delta(mirror, 0);
  const svc::Service::Mutation mutation =
      service.mutate_graph("g", 0, delta);
  EXPECT_EQ(mutation.version, 1u);
  EXPECT_EQ(mutation.applied_edges, delta.size());
  EXPECT_EQ(service.graph_version("g"), 1u);

  const svc::JobId recount_id = service.submit(recount_spec(base_id));
  ASSERT_EQ(service.wait(recount_id).state, svc::JobState::kCompleted);
  const CountResult got = service.count_result(recount_id);
  EXPECT_EQ(got.delta.applied_edges, delta.size());
  EXPECT_GT(got.delta.dirty_vertices, 0u);
  EXPECT_GT(got.delta.stages_recomputed, 0u);

  // Same seed, full pass over the mutated graph: must be bit-identical.
  mirror.apply(delta);
  CountOptions direct;
  direct.sampling.iterations = 5;
  direct.sampling.seed = 13;
  direct.execution.mode = ParallelMode::kSerial;
  const CountResult expected = count_template(mirror, tmpl, direct);
  ASSERT_EQ(got.per_iteration.size(), expected.per_iteration.size());
  for (std::size_t i = 0; i < expected.per_iteration.size(); ++i) {
    EXPECT_EQ(got.per_iteration[i], expected.per_iteration[i]) << i;
  }
  EXPECT_EQ(got.estimate, expected.estimate);
}

TEST(SvcDelta, StaleExpectVersionRefusesWithoutMutating) {
  svc::Service service({});
  service.registry().put("g", erdos_renyi_gnm(200, 600, 5));
  const Graph mirror = erdos_renyi_gnm(200, 600, 5);
  const GraphDelta delta = simple_delta(mirror, 1);

  try {
    service.mutate_graph("g", 7, delta);  // current version is 0
    FAIL() << "expected StaleVersionError";
  } catch (const svc::StaleVersionError& e) {
    EXPECT_EQ(e.current_version(), 0u);
    EXPECT_EQ(e.category(), ErrorCategory::kBadInput);
  }
  EXPECT_EQ(service.graph_version("g"), 0u);  // nothing mutated

  // The documented recovery: refresh the version and resend.
  EXPECT_EQ(service.mutate_graph("g", 0, delta).version, 1u);
  const GraphDelta next = simple_delta(*service.registry().get("g"), 2);
  EXPECT_EQ(service.mutate_graph("g", 1, next).version, 2u);

  EXPECT_THROW(service.mutate_graph("absent", 0, delta), Error);
}

TEST(SvcDelta, RecountComposesAcrossMultipleMutations) {
  const TreeTemplate tmpl = catalog_entry("U5-2").tree;
  Graph mirror = erdos_renyi_gnm(700, 2800, 9);

  svc::Service service({});
  service.registry().put("g", erdos_renyi_gnm(700, 2800, 9));
  const svc::JobId base_id =
      service.submit(incremental_spec("g", tmpl, 4, 19));
  ASSERT_EQ(service.wait(base_id).state, svc::JobState::kCompleted);

  // Two mutations land before the handle recounts: the service must
  // compose the delta-log suffix, not just the last edit.
  for (unsigned round = 0; round < 2; ++round) {
    const GraphDelta delta = simple_delta(mirror, 10 + round);
    service.mutate_graph("g", round, delta);
    mirror.apply(delta);
  }

  const svc::JobId recount_id = service.submit(recount_spec(base_id));
  ASSERT_EQ(service.wait(recount_id).state, svc::JobState::kCompleted);
  const CountResult got = service.count_result(recount_id);

  CountOptions direct;
  direct.sampling.iterations = 4;
  direct.sampling.seed = 19;
  direct.execution.mode = ParallelMode::kSerial;
  const CountResult expected = count_template(mirror, tmpl, direct);
  ASSERT_EQ(got.per_iteration.size(), expected.per_iteration.size());
  for (std::size_t i = 0; i < expected.per_iteration.size(); ++i) {
    EXPECT_EQ(got.per_iteration[i], expected.per_iteration[i]) << i;
  }
  EXPECT_EQ(got.estimate, expected.estimate);

  // The handle advanced to the current version: a further mutation and
  // recount still work from the same retained run.
  const GraphDelta more = simple_delta(mirror, 30);
  service.mutate_graph("g", 2, more);
  mirror.apply(more);
  const svc::JobId again = service.submit(recount_spec(base_id));
  ASSERT_EQ(service.wait(again).state, svc::JobState::kCompleted);
  EXPECT_EQ(service.count_result(again).estimate,
            count_template(mirror, tmpl, direct).estimate);
}

TEST(SvcDelta, HandleBehindTruncatedDeltaLogFailsStale) {
  svc::Service::Config config;
  config.delta_log_limit = 1;  // only the latest mutation is replayable
  svc::Service service(config);
  service.registry().put("g", erdos_renyi_gnm(300, 1200, 7));
  Graph mirror = erdos_renyi_gnm(300, 1200, 7);

  const svc::JobId base_id =
      service.submit(incremental_spec("g", catalog_entry("U5-1").tree, 3));
  ASSERT_EQ(service.wait(base_id).state, svc::JobState::kCompleted);

  for (unsigned round = 0; round < 2; ++round) {
    const GraphDelta delta = simple_delta(mirror, 40 + round);
    service.mutate_graph("g", round, delta);
    mirror.apply(delta);
  }

  // The handle is at version 0; the log only reaches back to version 1.
  const svc::JobId recount_id = service.submit(recount_spec(base_id));
  const svc::JobInfo done = service.wait(recount_id);
  EXPECT_EQ(done.state, svc::JobState::kFailed);
  EXPECT_NE(done.error.find("delta log"), std::string::npos) << done.error;

  // A stale handle is dropped, and a later recount says so at submit.
  EXPECT_EQ(service.health().retained_runs, 0u);
  try {
    service.submit(recount_spec(base_id));
    FAIL() << "expected a typed no-retained-run error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kBadInput);
    EXPECT_NE(std::string(e.what()).find("no retained run"),
              std::string::npos);
  }
}

TEST(SvcDelta, RetainedPoolEvictsLeastRecentlyUsed) {
  svc::Service::Config config;
  config.max_retained_runs = 1;
  svc::Service service(config);
  service.registry().put("g", erdos_renyi_gnm(300, 1200, 3));

  const svc::JobId first =
      service.submit(incremental_spec("g", catalog_entry("U5-1").tree, 2));
  ASSERT_EQ(service.wait(first).state, svc::JobState::kCompleted);
  const svc::JobId second =
      service.submit(incremental_spec("g", catalog_entry("U5-2").tree, 2));
  ASSERT_EQ(service.wait(second).state, svc::JobState::kCompleted);

  // The pool holds one handle: the older run was evicted to make room.
  EXPECT_EQ(service.health().retained_runs, 1u);
  EXPECT_THROW(service.submit(recount_spec(first)), Error);

  const GraphDelta delta =
      simple_delta(*service.registry().get("g"), 50);
  service.mutate_graph("g", 0, delta);
  const svc::JobId recount_id = service.submit(recount_spec(second));
  EXPECT_EQ(service.wait(recount_id).state, svc::JobState::kCompleted);
}

TEST(SvcRegistry, ReRegisterResurrectsHeldEvictedGraph) {
  const Graph probe = erdos_renyi_gnm(500, 1500, 1);
  svc::GraphRegistry registry(probe.bytes() + probe.bytes() / 2);
  auto held = registry.put("g", erdos_renyi_gnm(500, 1500, 1));
  registry.put("other", erdos_renyi_gnm(500, 1500, 2));
  EXPECT_FALSE(registry.contains("g"));  // evicted; `held` keeps it alive

  // Re-registering the same graph must resurrect the held copy, not
  // admit a second allocation the byte accounting would undercount.
  auto back = registry.put("g", erdos_renyi_gnm(500, 1500, 1));
  EXPECT_EQ(back.get(), held.get());
  EXPECT_EQ(registry.stats().resurrections, 1u);
  EXPECT_TRUE(registry.contains("g"));
  EXPECT_LE(registry.stats().resident_bytes, registry.stats().budget_bytes);
}

// ---- concurrent sessions over the shared obs registry ----------------------

// Gauges ride along in every delta (they are last-set values, not
// rates), so "this session did work" means counter or histogram
// activity in the drained slice.
bool has_activity(const std::vector<obs::MetricSnapshot>& delta) {
  for (const obs::MetricSnapshot& snap : delta) {
    if (snap.kind != obs::InstrumentKind::kGauge) return true;
  }
  return false;
}

TEST(SvcSession, TwoSessionsScrapeWhileJobsWrite) {
  obs::set_enabled(true);
  svc::Service::Config config;
  config.workers = 2;
  svc::Service service(config);
  service.registry().put("g", erdos_renyi_gnm(800, 3200, 9));

  std::atomic<bool> stop{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([&] {
    // Hammer the registry while both sessions' jobs are writing to it:
    // scrape() must stay consistent (counters never go backwards).
    double last_total = 0.0;
    while (!stop.load(std::memory_order_relaxed)) {
      double total = 0.0;
      for (const obs::MetricSnapshot& snap : obs::Registry::global().scrape()) {
        if (snap.kind == obs::InstrumentKind::kCounter) total += snap.value;
      }
      EXPECT_GE(total, last_total);
      last_total = total;
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  svc::Session session_a(service);
  svc::Session session_b(service);
  svc::JobSpec job_a = count_spec("g", catalog_entry("U7-1").tree, 30);
  job_a.options.observability.enabled = true;
  svc::JobSpec job_b = count_spec("g", catalog_entry("U7-2").tree, 30);
  job_b.options.observability.enabled = true;
  const svc::JobId id_a = session_a.submit(std::move(job_a));
  const svc::JobId id_b = session_b.submit(std::move(job_b));
  EXPECT_EQ(service.wait(id_a).state, svc::JobState::kCompleted);
  EXPECT_EQ(service.wait(id_b).state, svc::JobState::kCompleted);

  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_GT(scrapes.load(), 0);

  // Each session drains real activity, and a quiet re-drain has none.
  EXPECT_TRUE(has_activity(session_a.drain_metrics()));
  EXPECT_FALSE(has_activity(session_a.drain_metrics()));
  obs::set_enabled(false);
}

TEST(SvcSession, DrainMetricsScopesToTheSessionWindow) {
  obs::set_enabled(true);
  obs::Registry::global().reset();
  svc::Service service({});
  service.registry().put("g", erdos_renyi_gnm(300, 1200, 5));

  svc::Session before(service);
  svc::JobSpec job = count_spec("g", catalog_entry("U5-1").tree, 10);
  job.options.observability.enabled = true;
  before.submit(std::move(job));
  service.wait(before.submitted().back());
  EXPECT_TRUE(has_activity(before.drain_metrics()));

  // A session baselined AFTER that work sees none of it.
  svc::Session after(service);
  EXPECT_FALSE(has_activity(after.drain_metrics()));
  obs::set_enabled(false);
}

}  // namespace
}  // namespace fascia
