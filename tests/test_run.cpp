// Resilient run layer: guard semantics, memory planning, checkpoint
// format, and (in FASCIA_FAULT_INJECTION builds) crash/alloc-failure
// recovery.  The acceptance bar throughout is *bit-identical* resumed
// estimates — colorings are counter-mode in (seed, iteration), so a
// resumed run must reproduce the uninterrupted one exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/counter.hpp"
#include "core/engine.hpp"
#include "dp/table_naive.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "run/checkpoint.hpp"
#include "run/controls.hpp"
#include "run/guard.hpp"
#include "run/memory.hpp"
#include "run/spill.hpp"
#include "sched/batch.hpp"
#include "sched/plan.hpp"
#include "treelet/catalog.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace fascia {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

Graph test_graph() { return testing::complete_graph(9); }

CountOptions base_options() {
  CountOptions options;
  options.sampling.iterations = 10;
  options.execution.mode = ParallelMode::kSerial;
  options.sampling.seed = 123;
  return options;
}

// ---- RunGuard ------------------------------------------------------------

TEST(RunGuard, InertControlsNeverTrip) {
  const RunControls controls;
  EXPECT_FALSE(controls.active());
  const RunGuard guard(controls);
  EXPECT_FALSE(guard.poll());
  EXPECT_FALSE(guard.stopped());
}

TEST(RunGuard, CancelFlagLatchesCancelled) {
  std::atomic<bool> cancel{true};
  RunControls controls;
  controls.cancel = &cancel;
  EXPECT_TRUE(controls.active());
  const RunGuard guard(controls);
  EXPECT_TRUE(guard.poll());
  EXPECT_TRUE(guard.stopped());
  EXPECT_EQ(guard.status(), RunStatus::kCancelled);
}

TEST(RunGuard, TinyDeadlineTrips) {
  RunControls controls;
  controls.deadline_seconds = 1e-9;
  const RunGuard guard(controls);
  EXPECT_TRUE(guard.poll());
  EXPECT_EQ(guard.status(), RunStatus::kDeadline);
}

TEST(RunGuard, FirstStopReasonWins) {
  const RunControls controls;
  const RunGuard guard(controls);
  guard.stop(RunStatus::kDeadline);
  guard.stop(RunStatus::kCancelled);  // late; must not overwrite
  EXPECT_EQ(guard.status(), RunStatus::kDeadline);
}

TEST(RunStatusName, NamesAreStable) {
  EXPECT_STREQ(run_status_name(RunStatus::kCompleted), "completed");
  EXPECT_STREQ(run_status_name(RunStatus::kDeadline), "deadline");
  EXPECT_STREQ(run_status_name(RunStatus::kCancelled), "cancelled");
  EXPECT_STREQ(run_status_name(RunStatus::kMemDegraded), "mem-degraded");
}

// ---- memory planning -----------------------------------------------------

TEST(MemoryPlan, ZeroBudgetDisablesPlanning) {
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  const auto part =
      partition_template(tree, PartitionStrategy::kOneAtATime, true);
  const auto plan =
      run::plan_memory(part, 5, 1000, false, TableKind::kNaive, 4, 0);
  EXPECT_EQ(plan.table, TableKind::kNaive);
  EXPECT_EQ(plan.engine_copies, 4);
  EXPECT_TRUE(plan.fits);
  EXPECT_TRUE(plan.degradations.empty());
}

TEST(MemoryPlan, LadderDegradesNaiveUnderTightBudget) {
  const TreeTemplate& tree = catalog_entry("U7-1").tree;
  const auto part =
      partition_template(tree, PartitionStrategy::kOneAtATime, true);
  const VertexId n = 100000;
  const auto naive = run::estimate_peak_bytes(part, 7, n, TableKind::kNaive,
                                              false);
  const auto compact = run::estimate_peak_bytes(part, 7, n,
                                                TableKind::kCompact, false);
  ASSERT_LT(compact, naive);
  // A budget below naive's estimate but at/above compact's must step
  // the ladder down without losing the single-copy configuration.
  const auto plan = run::plan_memory(part, 7, n, false, TableKind::kNaive, 1,
                                     (naive + compact) / 2);
  EXPECT_NE(plan.table, TableKind::kNaive);
  EXPECT_TRUE(plan.fits);
  EXPECT_FALSE(plan.degradations.empty());
  EXPECT_LE(plan.estimated_peak_bytes, (naive + compact) / 2);
}

TEST(MemoryPlan, EngineCopiesReducedBeforeGivingUp) {
  const TreeTemplate& tree = catalog_entry("U7-1").tree;
  const auto part =
      partition_template(tree, PartitionStrategy::kOneAtATime, true);
  const VertexId n = 100000;
  const auto naive = run::estimate_peak_bytes(part, 7, n, TableKind::kNaive,
                                              false);
  // Eight naive copies cannot fit in one naive copy's budget; the
  // ladder must shed copies (and possibly the layout) until it fits.
  const auto plan =
      run::plan_memory(part, 7, n, false, TableKind::kNaive, 8, naive);
  EXPECT_TRUE(plan.fits);
  EXPECT_LT(plan.engine_copies, 8);
  EXPECT_FALSE(plan.degradations.empty());
}

TEST(MemoryPlan, WorkspaceBytesScaleWithSweepThreads) {
  const TreeTemplate& tree = catalog_entry("U7-1").tree;
  const auto part =
      partition_template(tree, PartitionStrategy::kOneAtATime, true);
  EXPECT_GT(run::estimate_workspace_bytes(part, 7), 0u);
  const VertexId n = 50000;
  const auto one = run::plan_memory(part, 7, n, false, TableKind::kCompact,
                                    1, 0, /*threads_per_copy=*/1);
  const auto eight = run::plan_memory(part, 7, n, false, TableKind::kCompact,
                                      1, 0, /*threads_per_copy=*/8);
  EXPECT_GT(eight.estimated_peak_bytes, one.estimated_peak_bytes);
  EXPECT_EQ(eight.estimated_peak_bytes - one.estimated_peak_bytes,
            7 * run::estimate_workspace_bytes(part, 7));
  // Outer copies multiply the whole per-copy footprint, workspaces
  // included: 4 copies x 1 thread must model more than 1 x 4 when the
  // tables dominate.
  const auto outer4 = run::plan_memory(part, 7, n, false, TableKind::kCompact,
                                       4, 0, /*threads_per_copy=*/1);
  EXPECT_GT(outer4.estimated_peak_bytes, eight.estimated_peak_bytes);
}

TEST(MemoryPlan, EstimateCoversMeasuredNaivePeak) {
  // Naive tables have a closed-form size, so the planning estimate must
  // bracket the MemTracker-measured table peak of a real run: at least
  // the measured bytes (workspaces and frontiers only add), and within
  // a small factor of them (the free_after schedule is the same one the
  // engine executes).
  const Graph g = erdos_renyi_gnm(2000, 6000, 7);
  const TreeTemplate& tree = catalog_entry("U7-1").tree;
  const auto part =
      partition_template(tree, PartitionStrategy::kOneAtATime, true);
  const auto plan = run::plan_memory(part, 7, g.num_vertices(), false,
                                     TableKind::kNaive, 1, 0, 1);
  CountOptions options = base_options();
  options.sampling.iterations = 2;
  options.execution.table = TableKind::kNaive;
  const CountResult result = count_template(g, tree, options);
  ASSERT_GT(result.peak_table_bytes, 0u);
  EXPECT_GE(plan.estimated_peak_bytes, result.peak_table_bytes);
  EXPECT_LE(plan.estimated_peak_bytes, 3 * result.peak_table_bytes);
}

TEST(MemoryPlan, EstimateWithinProcessHighWaterRss) {
  // The modeled peak is a *planning* figure; sanity-check it against
  // the OS's view where /proc is available: real table allocations are
  // touched pages, so the process high-water RSS must be at least the
  // MemTracker peak, and the estimate must not exceed the whole
  // process footprint (generous bound — gtest and the graph also
  // occupy RSS).
  std::ifstream status("/proc/self/status");
  if (!status.is_open()) GTEST_SKIP() << "/proc/self/status not available";

  const Graph g = erdos_renyi_gnm(4000, 16000, 11);
  const TreeTemplate& tree = catalog_entry("U7-1").tree;
  CountOptions options = base_options();
  options.sampling.iterations = 2;
  options.execution.table = TableKind::kNaive;
  const CountResult result = count_template(g, tree, options);

  std::size_t hwm_kib = 0;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      hwm_kib = static_cast<std::size_t>(
          std::strtoull(line.c_str() + 6, nullptr, 10));
      break;
    }
  }
  if (hwm_kib == 0) GTEST_SKIP() << "VmHWM not reported";
  const std::size_t hwm_bytes = hwm_kib * 1024;
  EXPECT_GE(hwm_bytes, result.peak_table_bytes);
  ASSERT_GT(result.run.requested_iterations, 0);
  const auto part =
      partition_template(tree, PartitionStrategy::kOneAtATime, true);
  const auto plan = run::plan_memory(part, 7, g.num_vertices(), false,
                                     TableKind::kNaive, 1, 0, 1);
  EXPECT_LE(plan.estimated_peak_bytes, hwm_bytes);
}

TEST(MemoryPlan, ImpossibleBudgetReportsNotFitting) {
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  const auto part =
      partition_template(tree, PartitionStrategy::kOneAtATime, true);
  const auto plan =
      run::plan_memory(part, 5, 100000, false, TableKind::kCompact, 1, 16);
  EXPECT_FALSE(plan.fits);
  EXPECT_FALSE(plan.degradations.empty());
}

TEST(MemoryPlan, SuccinctRungBetweenCompactAndHash) {
  const TreeTemplate& tree = catalog_entry("U7-1").tree;
  const auto part =
      partition_template(tree, PartitionStrategy::kOneAtATime, true);
  const VertexId n = 100000;
  const auto compact = run::estimate_peak_bytes(part, 7, n,
                                                TableKind::kCompact, false);
  const auto succinct = run::estimate_peak_bytes(part, 7, n,
                                                 TableKind::kSuccinct, false);
  ASSERT_LT(succinct, compact);
  // Between the two estimates the ladder must stop on succinct — not
  // jump past it to hash (modeled larger on unselective instances) or
  // report not fitting.
  const auto plan = run::plan_memory(part, 7, n, false, TableKind::kCompact,
                                     1, (compact + succinct) / 2);
  EXPECT_EQ(plan.table, TableKind::kSuccinct);
  EXPECT_TRUE(plan.fits);
  EXPECT_FALSE(plan.spill);
  EXPECT_FALSE(plan.degradations.empty());
}

TEST(MemoryPlan, SuccinctEstimateBracketsMeasuredPeak) {
  // Unlike naive's closed form, succinct bytes depend on run-time slot
  // occupancy (and slab rounding), so the contract is a factor
  // bracket: the planning estimate must land within 4x of the
  // MemTracker-measured table peak of a real run in either direction,
  // and stay below the dense model it degrades from.
  const Graph g = erdos_renyi_gnm(2000, 6000, 7);
  const TreeTemplate& tree = catalog_entry("U7-1").tree;
  const auto part =
      partition_template(tree, PartitionStrategy::kOneAtATime, true);
  const auto plan = run::plan_memory(part, 7, g.num_vertices(), false,
                                     TableKind::kSuccinct, 1, 0, 1);
  const auto naive = run::estimate_peak_bytes(part, 7, g.num_vertices(),
                                              TableKind::kNaive, false);
  CountOptions options = base_options();
  options.sampling.iterations = 2;
  options.execution.table = TableKind::kSuccinct;
  const CountResult result = count_template(g, tree, options);
  ASSERT_GT(result.peak_table_bytes, 0u);
  EXPECT_GE(4 * plan.estimated_peak_bytes, result.peak_table_bytes);
  EXPECT_LE(plan.estimated_peak_bytes, 4 * result.peak_table_bytes);
  EXPECT_LT(run::estimate_peak_bytes(part, 7, g.num_vertices(),
                                     TableKind::kSuccinct, false),
            naive);
}

TEST(MemoryPlan, SpmmEstimateBracketsMeasuredWorkspace) {
  // The SpMM multivector estimate prices the widest eligible stage
  // from compact-occupancy row counts; the engine records the actual
  // slab + remap peak across the stages that really took the SpMM
  // path.  Like the succinct table bracket, the contract is a 4x
  // factor in either direction, and plan_memory must carry the bytes
  // on top of the table peak.
  const Graph g = erdos_renyi_gnm(2000, 6000, 7);
  const TreeTemplate& tree = catalog_entry("U7-1").tree;
  const auto part =
      partition_template(tree, PartitionStrategy::kOneAtATime, true);
  const std::size_t estimate = run::estimate_spmm_multivector_bytes(
      part, 7, g.num_vertices(), false);
  ASSERT_GT(estimate, 0u);

  // Naive tables: dense rows keep every SpMM-eligible stage past the
  // per-layout profitability gate on this graph, so the measured peak
  // covers the widest stage the estimate prices.
  DpEngineOptions engine_opts;
  engine_opts.spmm_kernels = true;
  DpEngine<NaiveTable> engine(g, part, 7, engine_opts);
  ColorArray colors(static_cast<std::size_t>(g.num_vertices()));
  Xoshiro256 rng(5);
  for (auto& c : colors) c = static_cast<std::uint8_t>(rng.bounded(7));
  engine.run(colors, /*parallel_inner=*/false);
  const std::size_t measured = engine.spmm_workspace_bytes();
  ASSERT_GT(measured, 0u);
  EXPECT_GE(4 * estimate, measured);
  EXPECT_LE(estimate, 4 * measured);

  const auto base = run::plan_memory(part, 7, g.num_vertices(), false,
                                     TableKind::kNaive, 1, 0, 1);
  const auto with_spmm = run::plan_memory(part, 7, g.num_vertices(), false,
                                          TableKind::kNaive, 1, 0, 1,
                                          /*spill_available=*/false, estimate);
  EXPECT_GE(with_spmm.estimated_peak_bytes,
            base.estimated_peak_bytes + estimate);
}

TEST(MemoryPlan, SpillRungArmsOnlyWithDirectory) {
  // A budget below every in-memory layout but above the paged working
  // set: without a spill directory the plan honestly reports not
  // fitting; with one it takes the out-of-core rung and fits.  A
  // single template's one-at-a-time schedule already frees everything
  // outside the active triple, so this needs a merged multi-template
  // partition — the case paging exists for.
  const Graph g = erdos_renyi_gnm(2000, 6000, 7);
  std::vector<sched::BatchJob> jobs;
  for (TreeTemplate t : {TreeTemplate::path(10), TreeTemplate::star(10)}) {
    sched::BatchJob job;
    job.tmpl = std::move(t);
    job.iterations = 2;
    jobs.push_back(std::move(job));
  }
  const sched::BatchPlan plan = sched::plan_batch(g, jobs, {});
  const int k = plan.num_colors;
  const VertexId n = g.num_vertices();
  const auto succinct = run::estimate_peak_bytes(plan.merged, k, n,
                                                 TableKind::kSuccinct, false);
  const auto working = run::estimate_spill_working_set_bytes(
      plan.merged, k, n, TableKind::kSuccinct, false);
  ASSERT_LT(working, succinct);
  const std::size_t budget = (working + succinct) / 2;

  const auto no_spill = run::plan_memory(plan.merged, k, n, false,
                                         TableKind::kCompact, 1, budget, 1,
                                         /*spill_available=*/false);
  EXPECT_FALSE(no_spill.fits);
  EXPECT_FALSE(no_spill.spill);

  const auto paged = run::plan_memory(plan.merged, k, n, false,
                                      TableKind::kCompact, 1, budget, 1,
                                      /*spill_available=*/true);
  EXPECT_TRUE(paged.spill);
  EXPECT_TRUE(paged.fits);
  EXPECT_EQ(paged.table, TableKind::kSuccinct);
  EXPECT_LE(paged.estimated_peak_bytes, budget);
}

// ---- checkpoint file format ----------------------------------------------

TEST(Checkpoint, SaveLoadRoundTrip) {
  const std::string path = temp_path("fascia_ckpt_roundtrip.bin");
  run::Checkpoint out;
  out.kind = run::Checkpoint::kKindCount;
  out.seed = 7;
  out.num_colors = 5;
  out.fingerprint = 0xabcdef;
  out.iterations_done = 3;
  out.per_job = {{1.5, -2.25, 3.0}, {0.0, 42.0}};
  run::save_checkpoint(path, out);

  std::string why;
  const auto in = run::load_checkpoint(path, &why);
  ASSERT_TRUE(in.has_value()) << why;
  EXPECT_EQ(in->kind, out.kind);
  EXPECT_EQ(in->seed, out.seed);
  EXPECT_EQ(in->num_colors, out.num_colors);
  EXPECT_EQ(in->fingerprint, out.fingerprint);
  EXPECT_EQ(in->iterations_done, out.iterations_done);
  EXPECT_EQ(in->per_job, out.per_job);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileReturnsNullopt) {
  std::string why;
  EXPECT_FALSE(run::load_checkpoint("/no/such/ckpt.bin", &why).has_value());
  EXPECT_EQ(why, "cannot open checkpoint");
}

TEST(Checkpoint, CorruptByteRejectedByChecksum) {
  const std::string path = temp_path("fascia_ckpt_corrupt.bin");
  run::Checkpoint out;
  out.per_job = {{1.0, 2.0}};
  out.iterations_done = 2;
  run::save_checkpoint(path, out);
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(20);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(20);
    byte = static_cast<char>(byte ^ 0x40);
    file.write(&byte, 1);
  }
  std::string why;
  EXPECT_FALSE(run::load_checkpoint(path, &why).has_value());
  EXPECT_FALSE(why.empty());
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedFileRejected) {
  const std::string path = temp_path("fascia_ckpt_trunc.bin");
  run::Checkpoint out;
  out.per_job = {{1.0, 2.0, 3.0}};
  out.iterations_done = 3;
  run::save_checkpoint(path, out);
  std::string all;
  {
    std::ifstream file(path, std::ios::binary);
    all.assign(std::istreambuf_iterator<char>(file), {});
  }
  {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file.write(all.data(), static_cast<std::streamsize>(all.size() / 2));
  }
  std::string why;
  EXPECT_FALSE(run::load_checkpoint(path, &why).has_value());
  std::remove(path.c_str());
}

TEST(Checkpoint, GarbageFileRejectedNotCrashing) {
  const std::string path = temp_path("fascia_ckpt_garbage.bin");
  {
    std::ofstream file(path, std::ios::binary);
    file << "this is not a checkpoint at all, not even close.....";
  }
  std::string why;
  EXPECT_FALSE(run::load_checkpoint(path, &why).has_value());
  EXPECT_FALSE(why.empty());
  std::remove(path.c_str());
}

// ---- spill page file format ----------------------------------------------

TEST(SpillFile, WriterReaderRoundTrip) {
  const std::string path = temp_path("fascia_spill_page.bin");
  std::remove(path.c_str());
  {
    run::SpillWriter writer(path, 10, 4);
    const std::vector<double> first = {1.0, 0.0, 2.5, 3.0};
    const std::vector<double> second = {0.0, 4.0, 0.0, 0.25};
    writer.write_row(2, first);
    writer.write_row(7, second);
    EXPECT_GT(writer.finalize(), 0u);
  }
  const run::SpillReader reader(path);
  EXPECT_EQ(reader.num_vertices(), 10);
  EXPECT_EQ(reader.num_colorsets(), 4u);
  ASSERT_EQ(reader.num_rows(), 2u);
  EXPECT_EQ(reader.row_vertex(0), 2);
  EXPECT_EQ(reader.row_vertex(1), 7);
  ASSERT_EQ(reader.row(0).size(), 4u);
  EXPECT_EQ(reader.row(0)[0], 1.0);
  EXPECT_EQ(reader.row(0)[2], 2.5);
  EXPECT_EQ(reader.row(1)[1], 4.0);
  EXPECT_EQ(reader.row(1)[3], 0.25);
  std::remove(path.c_str());
}

TEST(SpillFile, CorruptByteRejectedByChecksum) {
  // A damaged page cannot be consumed bit-identically, so unlike a
  // checkpoint the reader must throw instead of degrading silently.
  const std::string path = temp_path("fascia_spill_corrupt.bin");
  std::remove(path.c_str());
  {
    run::SpillWriter writer(path, 6, 3);
    const std::vector<double> row = {1.0, 2.0, 3.0};
    writer.write_row(1, row);
    writer.finalize();
  }
  {
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(20);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(20);
    byte = static_cast<char>(byte ^ 0x40);
    file.write(&byte, 1);
  }
  EXPECT_THROW(run::SpillReader reader(path), Error);
  std::remove(path.c_str());
}

TEST(SpillFile, AbandonedWriterLeavesNoFiles) {
  const std::string path = temp_path("fascia_spill_abandoned.bin");
  std::remove(path.c_str());
  {
    run::SpillWriter writer(path, 4, 2);
    const std::vector<double> row = {1.0, 2.0};
    writer.write_row(0, row);
    // no finalize(): destructor must remove the temp file
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// ---- count_template under controls ---------------------------------------

TEST(ResilientCount, DeadlineYieldsHonestPartial) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  CountOptions options = base_options();
  options.sampling.iterations = 200;
  options.run.deadline_seconds = 1e-9;
  const CountResult result = count_template(g, tree, options);
  EXPECT_EQ(result.run.status, RunStatus::kDeadline);
  EXPECT_LT(result.run.completed_iterations, 200);
  EXPECT_EQ(result.per_iteration.size(),
            static_cast<std::size_t>(result.run.completed_iterations));
  EXPECT_EQ(result.run.requested_iterations, 200);
}

TEST(ResilientCount, PresetCancelStopsBeforeWork) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  std::atomic<bool> cancel{true};
  CountOptions options = base_options();
  options.run.cancel = &cancel;
  const CountResult result = count_template(g, tree, options);
  EXPECT_EQ(result.run.status, RunStatus::kCancelled);
  EXPECT_EQ(result.run.completed_iterations, 0);
  EXPECT_EQ(result.estimate, 0.0);
}

TEST(ResilientCount, TinyBudgetDegradesNotAborts) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  CountOptions options = base_options();
  options.execution.table = TableKind::kNaive;
  options.run.memory_budget_bytes = 1;  // impossible on purpose
  const CountResult result = count_template(g, tree, options);
  EXPECT_EQ(result.run.status, RunStatus::kMemDegraded);
  EXPECT_FALSE(result.run.degradations.empty());
  EXPECT_NE(result.run.table_used, TableKind::kNaive);
}

TEST(ResilientCount, GenerousBudgetCompletesWithoutDegradation) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  CountOptions options = base_options();
  options.run.memory_budget_bytes = std::size_t{1} << 33;  // 8 GiB
  const CountResult result = count_template(g, tree, options);
  EXPECT_EQ(result.run.status, RunStatus::kCompleted);
  EXPECT_EQ(result.run.completed_iterations, options.sampling.iterations);
  EXPECT_TRUE(result.run.degradations.empty());
  EXPECT_GT(result.run.estimated_peak_bytes, 0u);
}

// ---- checkpoint / resume bit-identity (no faults needed) -----------------

TEST(ResilientCount, ResumeExtendsToBitIdenticalEstimates) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  const std::string path = temp_path("fascia_resume_count.bin");
  std::remove(path.c_str());

  CountOptions reference_options = base_options();
  reference_options.sampling.iterations = 10;
  const CountResult reference = count_template(g, tree, reference_options);

  // Phase 1: run only the first 4 iterations, checkpointing as we go.
  CountOptions first = reference_options;
  first.sampling.iterations = 4;
  first.run.checkpoint_path = path;
  first.run.checkpoint_every = 2;
  const CountResult partial = count_template(g, tree, first);
  EXPECT_EQ(partial.run.status, RunStatus::kCompleted);
  EXPECT_GE(partial.run.checkpoints_written, 2);

  // Phase 2: resume and extend to the full 10.  Same seed + counter
  // -mode colorings => the estimates must match bit for bit.
  CountOptions second = reference_options;
  second.run.checkpoint_path = path;
  second.run.resume = true;
  const CountResult resumed = count_template(g, tree, second);
  EXPECT_TRUE(resumed.run.resumed);
  EXPECT_EQ(resumed.run.resumed_iterations, 4);
  EXPECT_TRUE(resumed.run.resume_rejected.empty());
  ASSERT_EQ(resumed.per_iteration.size(), reference.per_iteration.size());
  for (std::size_t i = 0; i < reference.per_iteration.size(); ++i) {
    EXPECT_EQ(resumed.per_iteration[i], reference.per_iteration[i]) << i;
  }
  EXPECT_EQ(resumed.estimate, reference.estimate);
  std::remove(path.c_str());
}

TEST(ResilientCount, ResumeAcrossKernelFamilyBitIdentical) {
  // kernel_family is execution strategy, not sampling state, so —
  // like reference_kernels and reorder — it is excluded from the
  // checkpoint fingerprint: a checkpoint written under the frontier
  // family must resume under KernelFamily::kSpmm and extend to
  // bit-identical estimates (the families agree bit for bit).
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  const std::string path = temp_path("fascia_resume_family.bin");
  std::remove(path.c_str());

  CountOptions reference_options = base_options();
  reference_options.sampling.iterations = 10;
  const CountResult reference = count_template(g, tree, reference_options);

  CountOptions first = reference_options;
  first.sampling.iterations = 4;
  first.run.checkpoint_path = path;
  first.run.checkpoint_every = 2;
  count_template(g, tree, first);

  CountOptions second = reference_options;
  second.execution.kernel_family = KernelFamily::kSpmm;
  second.run.checkpoint_path = path;
  second.run.resume = true;
  const CountResult resumed = count_template(g, tree, second);
  EXPECT_TRUE(resumed.run.resumed);
  EXPECT_EQ(resumed.run.resumed_iterations, 4);
  EXPECT_TRUE(resumed.run.resume_rejected.empty());
  ASSERT_EQ(resumed.per_iteration.size(), reference.per_iteration.size());
  for (std::size_t i = 0; i < reference.per_iteration.size(); ++i) {
    EXPECT_EQ(resumed.per_iteration[i], reference.per_iteration[i]) << i;
  }
  EXPECT_EQ(resumed.estimate, reference.estimate);
  std::remove(path.c_str());
}

TEST(ResilientCount, PerVertexResumeBitIdentical) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-1").tree;
  const std::string path = temp_path("fascia_resume_gdd.bin");
  std::remove(path.c_str());

  CountOptions reference_options = base_options();
  reference_options.sampling.iterations = 6;
  reference_options.per_vertex = true;
  const CountResult reference = count_template(g, tree, reference_options);

  CountOptions first = reference_options;
  first.sampling.iterations = 3;
  first.run.checkpoint_path = path;
  first.run.checkpoint_every = 1;
  count_template(g, tree, first);

  CountOptions second = reference_options;
  second.run.checkpoint_path = path;
  second.run.resume = true;
  const CountResult resumed = count_template(g, tree, second);
  EXPECT_TRUE(resumed.run.resumed);
  ASSERT_EQ(resumed.vertex_counts.size(), reference.vertex_counts.size());
  for (std::size_t v = 0; v < reference.vertex_counts.size(); ++v) {
    EXPECT_EQ(resumed.vertex_counts[v], reference.vertex_counts[v]) << v;
  }
  std::remove(path.c_str());
}

TEST(ResilientCount, OuterModeResumeBitIdentical) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  const std::string path = temp_path("fascia_resume_outer.bin");
  std::remove(path.c_str());

  CountOptions reference_options = base_options();
  reference_options.sampling.iterations = 8;
  reference_options.execution.mode = ParallelMode::kOuterLoop;
  reference_options.execution.threads = 2;
  const CountResult reference = count_template(g, tree, reference_options);

  CountOptions first = reference_options;
  first.sampling.iterations = 3;
  first.run.checkpoint_path = path;
  first.run.checkpoint_every = 1;
  count_template(g, tree, first);

  CountOptions second = reference_options;
  second.run.checkpoint_path = path;
  second.run.resume = true;
  const CountResult resumed = count_template(g, tree, second);
  EXPECT_TRUE(resumed.run.resumed);
  ASSERT_EQ(resumed.per_iteration.size(), reference.per_iteration.size());
  for (std::size_t i = 0; i < reference.per_iteration.size(); ++i) {
    EXPECT_EQ(resumed.per_iteration[i], reference.per_iteration[i]) << i;
  }
  std::remove(path.c_str());
}

TEST(ResilientCount, SuccinctResumeBitIdentical) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  const std::string path = temp_path("fascia_resume_succinct.bin");
  std::remove(path.c_str());

  CountOptions reference_options = base_options();
  reference_options.sampling.iterations = 10;
  reference_options.execution.table = TableKind::kSuccinct;
  const CountResult reference = count_template(g, tree, reference_options);

  CountOptions first = reference_options;
  first.sampling.iterations = 4;
  first.run.checkpoint_path = path;
  first.run.checkpoint_every = 2;
  const CountResult partial = count_template(g, tree, first);
  EXPECT_EQ(partial.run.status, RunStatus::kCompleted);

  CountOptions second = reference_options;
  second.run.checkpoint_path = path;
  second.run.resume = true;
  const CountResult resumed = count_template(g, tree, second);
  EXPECT_TRUE(resumed.run.resumed);
  EXPECT_EQ(resumed.run.resumed_iterations, 4);
  ASSERT_EQ(resumed.per_iteration.size(), reference.per_iteration.size());
  for (std::size_t i = 0; i < reference.per_iteration.size(); ++i) {
    EXPECT_EQ(resumed.per_iteration[i], reference.per_iteration[i]) << i;
  }
  EXPECT_EQ(resumed.estimate, reference.estimate);
  std::remove(path.c_str());
}

TEST(ResilientBatch, PagedRunSpillsAndStaysBitIdentical) {
  // The out-of-core rung end to end: a k = 10 multi-template batch
  // whose budget sits between the paged working set and the cheapest
  // in-memory estimate must page tables out (spilled bytes > 0),
  // finish every requested coloring, and reproduce the unconstrained
  // run bit for bit — pages store rows as verbatim doubles, so a
  // spill/restore round trip is exact.
  const Graph g = erdos_renyi_gnm(2000, 6000, 7);
  std::vector<sched::BatchJob> jobs;
  for (TreeTemplate t : {TreeTemplate::path(10), TreeTemplate::star(10)}) {
    sched::BatchJob job;
    job.tmpl = std::move(t);
    job.iterations = 2;
    jobs.push_back(std::move(job));
  }
  sched::BatchOptions batch;
  batch.table = TableKind::kSuccinct;
  batch.mode = ParallelMode::kSerial;
  batch.seed = 123;
  const sched::BatchResult reference = sched::run_batch(g, jobs, batch);

  const sched::BatchPlan plan = sched::plan_batch(g, jobs, batch);
  const auto succinct = run::estimate_peak_bytes(
      plan.merged, plan.num_colors, g.num_vertices(), TableKind::kSuccinct,
      false);
  // Well under the floor layout's estimate, so planning arms the spill
  // rung — and under the real resident peak too (the model's slot
  // density understates this instance), so eviction actually fires.
  const std::string spill_dir = temp_path("fascia_paged_batch");
  std::filesystem::create_directories(spill_dir);
  sched::BatchOptions paged = batch;
  paged.run.memory_budget_bytes = succinct * 3 / 5;
  paged.run.spill_dir = spill_dir;
  const sched::BatchResult spilled = sched::run_batch(g, jobs, paged);

  EXPECT_EQ(spilled.run.status, RunStatus::kMemDegraded);
  EXPECT_EQ(spilled.run.completed_iterations,
            reference.run.completed_iterations);
  EXPECT_GT(spilled.run.spilled_bytes, 0u);
  EXPECT_GT(spilled.run.spill_events, 0);
  ASSERT_EQ(spilled.jobs.size(), reference.jobs.size());
  for (std::size_t j = 0; j < reference.jobs.size(); ++j) {
    EXPECT_EQ(spilled.jobs[j].per_iteration, reference.jobs[j].per_iteration)
        << "job " << j;
    EXPECT_EQ(spilled.jobs[j].estimate, reference.jobs[j].estimate);
  }

  std::error_code ec;
  std::filesystem::remove_all(spill_dir, ec);
}

TEST(ResilientCount, MismatchedCheckpointRejectedNotBlended) {
  const Graph g = test_graph();
  const std::string path = temp_path("fascia_resume_mismatch.bin");
  std::remove(path.c_str());

  CountOptions first = base_options();
  first.sampling.iterations = 4;
  first.run.checkpoint_path = path;
  count_template(g, catalog_entry("U5-2").tree, first);

  // Same file, different template: the fingerprint must reject it and
  // the run must start fresh (and still be correct).
  CountOptions second = base_options();
  second.sampling.iterations = 4;
  second.run.checkpoint_path = path;
  second.run.resume = true;
  const CountResult other =
      count_template(g, catalog_entry("U5-1").tree, second);
  EXPECT_FALSE(other.run.resumed);
  EXPECT_EQ(other.run.resume_rejected, "checkpoint fingerprint mismatch");
  EXPECT_EQ(other.run.completed_iterations, 4);

  CountOptions clean = base_options();
  clean.sampling.iterations = 4;
  const CountResult reference =
      count_template(g, catalog_entry("U5-1").tree, clean);
  EXPECT_EQ(other.estimate, reference.estimate);
  std::remove(path.c_str());
}

// ---- run_batch under controls --------------------------------------------

TEST(ResilientBatch, DeadlineYieldsHonestPartial) {
  const Graph g = test_graph();
  std::vector<sched::BatchJob> jobs(1);
  jobs[0].tmpl = catalog_entry("U5-2").tree;
  jobs[0].iterations = 100;
  sched::BatchOptions options;
  options.mode = ParallelMode::kSerial;
  options.seed = 5;
  options.run.deadline_seconds = 1e-9;
  const sched::BatchResult result = sched::run_batch(g, jobs, options);
  EXPECT_EQ(result.run.status, RunStatus::kDeadline);
  EXPECT_LT(result.run.completed_iterations, 100);
}

TEST(ResilientBatch, ResumeExtendsToBitIdenticalEstimates) {
  const Graph g = test_graph();
  const std::string path = temp_path("fascia_resume_batch.bin");
  std::remove(path.c_str());

  std::vector<sched::BatchJob> full_jobs(2);
  full_jobs[0].tmpl = catalog_entry("U5-2").tree;
  full_jobs[0].iterations = 10;
  full_jobs[1].tmpl = catalog_entry("U3-1").tree;
  full_jobs[1].target_relative_stderr = 10.0;  // converges at first check
  full_jobs[1].max_iterations = 20;

  sched::BatchOptions options;
  options.mode = ParallelMode::kSerial;
  options.seed = 17;
  const sched::BatchResult reference = sched::run_batch(g, full_jobs, options);

  // Interrupted run: only 4 iterations of the fixed job's budget.
  std::vector<sched::BatchJob> short_jobs = full_jobs;
  short_jobs[0].iterations = 4;
  sched::BatchOptions first = options;
  first.run.checkpoint_path = path;
  first.run.checkpoint_every = 2;
  const sched::BatchResult partial = sched::run_batch(g, short_jobs, first);
  EXPECT_GE(partial.run.checkpoints_written, 1);

  sched::BatchOptions second = options;
  second.run.checkpoint_path = path;
  second.run.resume = true;
  const sched::BatchResult resumed = sched::run_batch(g, full_jobs, second);
  EXPECT_TRUE(resumed.run.resumed);
  EXPECT_TRUE(resumed.run.resume_rejected.empty());
  ASSERT_EQ(resumed.jobs.size(), reference.jobs.size());
  for (std::size_t j = 0; j < reference.jobs.size(); ++j) {
    ASSERT_EQ(resumed.jobs[j].per_iteration.size(),
              reference.jobs[j].per_iteration.size())
        << "job " << j;
    for (std::size_t i = 0; i < reference.jobs[j].per_iteration.size(); ++i) {
      EXPECT_EQ(resumed.jobs[j].per_iteration[i],
                reference.jobs[j].per_iteration[i])
          << "job " << j << " iter " << i;
    }
    EXPECT_EQ(resumed.jobs[j].estimate, reference.jobs[j].estimate);
    EXPECT_EQ(resumed.jobs[j].converged, reference.jobs[j].converged);
  }
  std::remove(path.c_str());
}

#ifdef FASCIA_FAULT_INJECTION

// ---- fault-injection recovery --------------------------------------------

class FaultFixture : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

TEST_F(FaultFixture, CountCrashThenResumeBitIdentical) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  const std::string path = temp_path("fascia_crash_count.bin");
  std::remove(path.c_str());

  CountOptions reference_options = base_options();
  reference_options.sampling.iterations = 8;
  const CountResult reference = count_template(g, tree, reference_options);

  CountOptions crashing = reference_options;
  crashing.run.checkpoint_path = path;
  crashing.run.checkpoint_every = 1;
  fault::arm("run.crash", 4);  // dies entering the 4th iteration
  EXPECT_THROW(count_template(g, tree, crashing), fault::Injected);
  EXPECT_GE(fault::hits("run.crash"), 4);

  CountOptions resuming = reference_options;
  resuming.run.checkpoint_path = path;
  resuming.run.resume = true;
  const CountResult resumed = count_template(g, tree, resuming);
  EXPECT_TRUE(resumed.run.resumed);
  EXPECT_GT(resumed.run.resumed_iterations, 0);
  ASSERT_EQ(resumed.per_iteration.size(), reference.per_iteration.size());
  for (std::size_t i = 0; i < reference.per_iteration.size(); ++i) {
    EXPECT_EQ(resumed.per_iteration[i], reference.per_iteration[i]) << i;
  }
  EXPECT_EQ(resumed.estimate, reference.estimate);
  std::remove(path.c_str());
}

TEST_F(FaultFixture, BatchCrashThenResumeBitIdentical) {
  const Graph g = test_graph();
  const std::string path = temp_path("fascia_crash_batch.bin");
  std::remove(path.c_str());

  std::vector<sched::BatchJob> jobs(1);
  jobs[0].tmpl = catalog_entry("U5-2").tree;
  jobs[0].iterations = 8;
  sched::BatchOptions options;
  options.mode = ParallelMode::kSerial;
  options.seed = 29;
  const sched::BatchResult reference = sched::run_batch(g, jobs, options);

  sched::BatchOptions crashing = options;
  crashing.run.checkpoint_path = path;
  crashing.run.checkpoint_every = 1;
  fault::arm("run.crash", 6);
  EXPECT_THROW(sched::run_batch(g, jobs, crashing), fault::Injected);

  sched::BatchOptions resuming = options;
  resuming.run.checkpoint_path = path;
  resuming.run.resume = true;
  const sched::BatchResult resumed = sched::run_batch(g, jobs, resuming);
  EXPECT_TRUE(resumed.run.resumed);
  ASSERT_EQ(resumed.jobs[0].per_iteration.size(),
            reference.jobs[0].per_iteration.size());
  for (std::size_t i = 0; i < reference.jobs[0].per_iteration.size(); ++i) {
    EXPECT_EQ(resumed.jobs[0].per_iteration[i],
              reference.jobs[0].per_iteration[i])
        << i;
  }
  EXPECT_EQ(resumed.jobs[0].estimate, reference.jobs[0].estimate);
  std::remove(path.c_str());
}

TEST_F(FaultFixture, DpAllocFailureDegradesGracefully) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  CountOptions options = base_options();
  fault::arm("dp.alloc", 1);
  const CountResult result = count_template(g, tree, options);
  EXPECT_EQ(result.run.status, RunStatus::kMemDegraded);
  EXPECT_LT(result.run.completed_iterations, options.sampling.iterations);
  EXPECT_GE(fault::hits("dp.alloc"), 1);
}

TEST_F(FaultFixture, CheckpointWriteFailureDoesNotKillRun) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  const std::string path = temp_path("fascia_ckpt_fail.bin");
  std::remove(path.c_str());
  CountOptions options = base_options();
  options.sampling.iterations = 6;
  options.run.checkpoint_path = path;
  options.run.checkpoint_every = 1;
  fault::arm("checkpoint.write", 2);  // the 2nd write fails
  const CountResult result = count_template(g, tree, options);
  EXPECT_EQ(result.run.status, RunStatus::kCompleted);
  EXPECT_EQ(result.run.completed_iterations, 6);
  EXPECT_EQ(result.run.checkpoint_failures, 1);
  EXPECT_GE(result.run.checkpoints_written, 1);
  // Later successful writes must have left a loadable file behind.
  std::string why;
  const auto checkpoint = run::load_checkpoint(path, &why);
  ASSERT_TRUE(checkpoint.has_value()) << why;
  EXPECT_EQ(checkpoint->iterations_done, 6u);
  std::remove(path.c_str());
}

TEST_F(FaultFixture, EnvironmentArmsSites) {
  fault::disarm_all();
  ::setenv("FASCIA_FAULT", "run.crash:1", 1);
  fault::reload_from_env();
  ::unsetenv("FASCIA_FAULT");
  const Graph g = test_graph();
  CountOptions options = base_options();
  options.run.deadline_seconds = 3600;  // any control activates the layer
  EXPECT_THROW(count_template(g, catalog_entry("U5-2").tree, options),
               fault::Injected);
}

#endif  // FASCIA_FAULT_INJECTION

}  // namespace
}  // namespace fascia
