#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace fascia {
namespace {

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({-1.0, 1.0}), 0.0);
}

TEST(Stats, StdevBasics) {
  EXPECT_DOUBLE_EQ(stdev({}), 0.0);
  EXPECT_DOUBLE_EQ(stdev({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(stdev({1.0, 1.0, 1.0}), 0.0);
  EXPECT_NEAR(stdev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(relative_error(1.0, 0.0)));
  EXPECT_DOUBLE_EQ(relative_error(-50.0, -100.0), 0.5);
}

TEST(Stats, PrefixMeans) {
  const auto prefixes = prefix_means({2.0, 4.0, 6.0});
  ASSERT_EQ(prefixes.size(), 3u);
  EXPECT_DOUBLE_EQ(prefixes[0], 2.0);
  EXPECT_DOUBLE_EQ(prefixes[1], 3.0);
  EXPECT_DOUBLE_EQ(prefixes[2], 4.0);
}

TEST(Stats, PrefixMeansEmpty) {
  EXPECT_TRUE(prefix_means({}).empty());
}

TEST(Stats, IntegerHistogram) {
  const auto hist = integer_histogram({0.0, 1.2, 0.9, 2.0, 5.0, -1.0}, 3);
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 2u);  // 0.0 and -1.0 (clamped)
  EXPECT_EQ(hist[1], 2u);  // 1.2 and 0.9 round to 1
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[3], 1u);  // 5.0 clamped into the top bin
}

TEST(Stats, Log2Histogram) {
  const auto hist = log2_histogram({0.5, 1.0, 1.9, 2.0, 3.9, 4.0, 100.0});
  // bins: [1,2): 1.0,1.9 and 0.5 lands in bin 0 too
  ASSERT_GE(hist.size(), 7u);
  EXPECT_EQ(hist[0], 3u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[6], 1u);  // 100 in [64,128)
}

}  // namespace
}  // namespace fascia
