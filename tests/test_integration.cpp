// End-to-end pipelines mirroring the paper's experiments at test scale:
// dataset -> counter -> error vs exact; motif profiles across networks;
// GDD estimation vs exact GDD agreement.

#include <gtest/gtest.h>

#include "analytics/gdd.hpp"
#include "analytics/profiles.hpp"
#include "core/counter.hpp"
#include "core/motifs.hpp"
#include "exact/backtrack.hpp"
#include "graph/datasets.hpp"
#include "graph/labels.hpp"
#include "treelet/catalog.hpp"
#include "util/stats.hpp"

namespace fascia {
namespace {

TEST(Integration, ErrorFallsWithIterationsOnCircuit) {
  // Fig. 10's shape at test scale: running-estimate error after i
  // iterations, decreasing to a small value.
  const Graph g = make_dataset("circuit", 1.0, 7);
  const TreeTemplate& tree = catalog_entry("U5-1").tree;
  const double exact = exact::count_embeddings(g, tree);
  ASSERT_GT(exact, 0.0);

  CountOptions options;
  options.sampling.iterations = 600;
  options.execution.mode = ParallelMode::kSerial;
  options.sampling.seed = 5;
  const CountResult result = count_template(g, tree, options);
  const auto running = result.running_estimates();
  const double late_error = relative_error(running.back(), exact);
  EXPECT_LT(late_error, 0.1);
}

TEST(Integration, MotifProfilesDistinguishTopologies) {
  // Fig. 14's discriminative claim at test scale: a circuit-like
  // near-tree and a PPI-like power-law net have more different motif
  // profiles than two power-law nets of different sizes.
  CountOptions options;
  options.sampling.iterations = 120;
  options.execution.mode = ParallelMode::kSerial;

  const auto hpylori =
      count_all_treelets(make_dataset("hpylori", 1.0, 3), 5, options)
          .relative_frequencies();
  const auto celegans =
      count_all_treelets(make_dataset("celegans", 1.0, 3), 5, options)
          .relative_frequencies();
  const auto circuit =
      count_all_treelets(make_dataset("circuit", 1.0, 3), 5, options)
          .relative_frequencies();

  const double ppi_vs_ppi =
      analytics::profile_log_distance(hpylori, celegans);
  const double ppi_vs_circuit =
      analytics::profile_log_distance(hpylori, circuit);
  EXPECT_LT(ppi_vs_ppi, ppi_vs_circuit);
}

TEST(Integration, GddAgreementImprovesWithIterations) {
  // Fig. 16's shape: agreement between estimated and exact GDD rises
  // with iteration count.
  const Graph g = make_dataset("hpylori", 1.0, 11);
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  const int orbit = u52_central_vertex();
  const auto exact_degrees = exact::per_vertex_counts(g, tree, orbit);

  CountOptions few;
  few.sampling.iterations = 1;
  few.execution.mode = ParallelMode::kSerial;
  few.sampling.seed = 2;
  CountOptions many = few;
  many.sampling.iterations = 300;

  const auto degrees_few =
      graphlet_degrees(g, tree, orbit, few).vertex_counts;
  const auto degrees_many =
      graphlet_degrees(g, tree, orbit, many).vertex_counts;

  const double agreement_few =
      analytics::gdd_agreement(degrees_few, exact_degrees);
  const double agreement_many =
      analytics::gdd_agreement(degrees_many, exact_degrees);
  EXPECT_GT(agreement_many, agreement_few);
  EXPECT_GT(agreement_many, 0.8);
}

TEST(Integration, LabeledPipelineFasterSearchSpace) {
  // Fig. 4's mechanism at test scale: labeling shrinks table
  // occupancy, visible through peak table bytes.
  Graph g = make_dataset("ecoli", 1.0, 13);
  const TreeTemplate& base = catalog_entry("U5-2").tree;

  CountOptions options;
  options.sampling.iterations = 2;
  options.execution.mode = ParallelMode::kSerial;
  const CountResult unlabeled = count_template(g, base, options);

  Graph labeled_graph = g;
  assign_demographic_labels(labeled_graph, 17);
  TreeTemplate labeled_tree = base;
  labeled_tree.set_labels({0, 1, 2, 3, 4});
  const CountResult labeled =
      count_template(labeled_graph, labeled_tree, options);
  EXPECT_LT(labeled.peak_table_bytes, unlabeled.peak_table_bytes);
}

TEST(Integration, SeedReproducibilityAcrossPipelines) {
  const Graph g = make_dataset("celegans", 1.0, 29);
  CountOptions options;
  options.sampling.iterations = 3;
  options.execution.mode = ParallelMode::kSerial;
  options.sampling.seed = 99;
  const auto first = count_template(g, catalog_entry("U7-2").tree, options);
  const auto second = count_template(g, catalog_entry("U7-2").tree, options);
  EXPECT_EQ(first.per_iteration, second.per_iteration);
  EXPECT_EQ(first.estimate, second.estimate);
}

}  // namespace
}  // namespace fascia
