#include "exact/backtrack.hpp"

#include <gtest/gtest.h>

#include "exact/pattern_growth.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/labels.hpp"
#include "helpers.hpp"
#include "treelet/canonical.hpp"
#include "treelet/free_trees.hpp"

namespace fascia {
namespace {

TEST(ExactBacktrack, HandComputedCounts) {
  // P3 occurrences in a path of 5: 3.  In a star of 5: C(4,2) = 6.
  EXPECT_DOUBLE_EQ(
      exact::count_embeddings(testing::path_graph(5), TreeTemplate::path(3)),
      3.0);
  EXPECT_DOUBLE_EQ(
      exact::count_embeddings(testing::star_graph(5), TreeTemplate::path(3)),
      6.0);
  // Edges: P2 count equals m.
  EXPECT_DOUBLE_EQ(
      exact::count_embeddings(testing::complete_graph(5),
                              TreeTemplate::path(2)),
      10.0);
  // P3 in K4: 4 * C(3,2) = 12 (center choice x neighbor pair).
  EXPECT_DOUBLE_EQ(
      exact::count_embeddings(testing::complete_graph(4),
                              TreeTemplate::path(3)),
      12.0);
  // Star S4 (claw) in K4: each vertex is a center once: 4.
  EXPECT_DOUBLE_EQ(
      exact::count_embeddings(testing::complete_graph(4),
                              TreeTemplate::star(4)),
      4.0);
}

TEST(ExactBacktrack, SingleVertexCountsVertices) {
  EXPECT_DOUBLE_EQ(exact::count_embeddings(testing::path_graph(7),
                                           TreeTemplate::from_edges(1, {})),
                   7.0);
}

TEST(ExactBacktrack, MapsAreAlphaTimesEmbeddings) {
  const Graph g = largest_component(erdos_renyi_gnm(30, 70, 5));
  for (int k = 2; k <= 6; ++k) {
    for (const TreeTemplate& tree : all_free_trees(k)) {
      const double maps = exact::count_maps(g, tree);
      const double embeddings = exact::count_embeddings(g, tree);
      EXPECT_DOUBLE_EQ(maps, embeddings *
                                 static_cast<double>(automorphisms(tree)));
    }
  }
}

TEST(ExactBacktrack, MatchesReferenceBruteForce) {
  const Graph g = largest_component(erdos_renyi_gnm(35, 80, 3));
  for (int k = 3; k <= 6; ++k) {
    for (const TreeTemplate& tree : all_free_trees(k)) {
      EXPECT_DOUBLE_EQ(exact::count_maps(g, tree),
                       testing::brute_force_maps(g, tree))
          << tree.describe();
    }
  }
}

TEST(ExactBacktrack, LabeledCounts) {
  Graph g = testing::path_graph(4);
  g.set_labels({0, 1, 0, 1}, 2);
  TreeTemplate tree = TreeTemplate::path(2);
  tree.set_labels({0, 1});
  // Edges with labels (0,1): (0,1), (1,2), (2,3) all qualify.
  // alpha(labeled P2 with distinct labels) = 1, so count = maps = 3.
  EXPECT_DOUBLE_EQ(exact::count_embeddings(g, tree), 3.0);
}

TEST(ExactBacktrack, PerVertexSumsToOrbitTimesCount) {
  const Graph g = largest_component(erdos_renyi_gnm(30, 70, 19));
  for (int k = 3; k <= 5; ++k) {
    for (const TreeTemplate& tree : all_free_trees(k)) {
      const auto orbits = vertex_orbits(tree);
      for (int orbit_vertex : {0, k - 1}) {
        int orbit_size = 0;
        for (int v = 0; v < k; ++v) {
          orbit_size += (orbits[v] == orbits[orbit_vertex]);
        }
        const auto per_vertex =
            exact::per_vertex_counts(g, tree, orbit_vertex);
        double sum = 0.0;
        for (double value : per_vertex) sum += value;
        const double count = exact::count_embeddings(g, tree);
        EXPECT_NEAR(sum, count * orbit_size, 1e-6 * (1.0 + count))
            << tree.describe() << " orbit_vertex=" << orbit_vertex;
      }
    }
  }
}

TEST(ExactBacktrack, PerVertexOnPath) {
  // P3 in path 0-1-2-3-4, orbit = middle vertex: vertices 1,2,3 are
  // each the middle of exactly one P3.
  const auto counts = exact::per_vertex_counts(testing::path_graph(5),
                                               TreeTemplate::path(3), 1);
  EXPECT_DOUBLE_EQ(counts[0], 0.0);
  EXPECT_DOUBLE_EQ(counts[1], 1.0);
  EXPECT_DOUBLE_EQ(counts[2], 1.0);
  EXPECT_DOUBLE_EQ(counts[3], 1.0);
  EXPECT_DOUBLE_EQ(counts[4], 0.0);
}

// ---- pattern growth ------------------------------------------------------

class PatternGrowthMatchesBacktrack : public ::testing::TestWithParam<int> {};

TEST_P(PatternGrowthMatchesBacktrack, SameCountsEveryShape) {
  const int k = GetParam();
  const Graph g = largest_component(erdos_renyi_gnm(40, 90, 29));
  const auto result = exact::count_all_trees_by_growth(g, k);
  ASSERT_EQ(result.counts.size(), result.trees.size());
  double total_subtrees = 0.0;
  for (std::size_t i = 0; i < result.trees.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.counts[i],
                     exact::count_embeddings(g, result.trees[i]))
        << "shape " << i;
    total_subtrees += result.counts[i];
  }
  // Each k-subtree of the graph has exactly one shape.
  EXPECT_DOUBLE_EQ(result.subtrees_visited, total_subtrees);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PatternGrowthMatchesBacktrack,
                         ::testing::Values(2, 3, 4, 5, 6));

TEST(PatternGrowth, SingleVertex) {
  const auto result =
      exact::count_all_trees_by_growth(testing::path_graph(6), 1);
  ASSERT_EQ(result.counts.size(), 1u);
  EXPECT_DOUBLE_EQ(result.counts[0], 6.0);
}

TEST(PatternGrowth, PathGraphShapes) {
  // A path graph contains only path-shaped subtrees.
  const auto result =
      exact::count_all_trees_by_growth(testing::path_graph(10), 4);
  double nonpath = 0.0, path_count = 0.0;
  for (std::size_t i = 0; i < result.trees.size(); ++i) {
    if (isomorphic(result.trees[i], TreeTemplate::path(4))) {
      path_count += result.counts[i];
    } else {
      nonpath += result.counts[i];
    }
  }
  EXPECT_DOUBLE_EQ(path_count, 7.0);
  EXPECT_DOUBLE_EQ(nonpath, 0.0);
}

TEST(PatternGrowth, StarGraphShapes) {
  // Star graph: only star-shaped subtrees of each size.
  const auto result =
      exact::count_all_trees_by_growth(testing::star_graph(6), 4);
  for (std::size_t i = 0; i < result.trees.size(); ++i) {
    if (isomorphic(result.trees[i], TreeTemplate::star(4))) {
      EXPECT_DOUBLE_EQ(result.counts[i], 10.0);  // C(5,3)
    } else {
      EXPECT_DOUBLE_EQ(result.counts[i], 0.0);
    }
  }
}

TEST(PatternGrowth, BadSizeThrows) {
  EXPECT_THROW(exact::count_all_trees_by_growth(testing::path_graph(3), 0),
               std::invalid_argument);
  EXPECT_THROW(exact::count_all_trees_by_growth(testing::path_graph(3), 99),
               std::invalid_argument);
}

}  // namespace
}  // namespace fascia
