// Wire-protocol and socket front-end tests (src/svc/server.*,
// util/framing.*, util/socket.*).  The headline contract: a count
// served over TCP is byte-identical to the direct library call — the
// frame layer preserves message boundaries, the JSON layer round-trips
// doubles exactly, and the server routes through the same
// count_template the caller would have used.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/counter.hpp"
#include "graph/builder.hpp"
#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "treelet/catalog.hpp"
#include "util/error.hpp"
#include "util/framing.hpp"
#include "util/socket.hpp"

namespace fascia {
namespace {

using obs::Json;

// ---- framing ---------------------------------------------------------------

TEST(Framing, RoundTripsFramesOverAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  util::write_frame(fds[1], "");
  util::write_frame(fds[1], "{\"op\":\"status\"}");
  // Multi-chunk but comfortably inside the pipe buffer, so the writes
  // cannot block with the reader still on this thread.
  const std::string big(16 << 10, 'x');
  util::write_frame(fds[1], big);
  ::close(fds[1]);

  std::string payload;
  ASSERT_TRUE(util::read_frame(fds[0], &payload));
  EXPECT_EQ(payload, "");
  ASSERT_TRUE(util::read_frame(fds[0], &payload));
  EXPECT_EQ(payload, "{\"op\":\"status\"}");
  ASSERT_TRUE(util::read_frame(fds[0], &payload));
  EXPECT_EQ(payload, big);
  // Clean EOF between frames is end-of-stream, not an error.
  EXPECT_FALSE(util::read_frame(fds[0], &payload));
  ::close(fds[0]);
}

TEST(Framing, TruncatedFrameIsAProtocolError) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Prefix promises 8 bytes; deliver 3 and hang up.
  const unsigned char prefix[4] = {0, 0, 0, 8};
  ASSERT_EQ(::write(fds[1], prefix, 4), 4);
  ASSERT_EQ(::write(fds[1], "abc", 3), 3);
  ::close(fds[1]);
  std::string payload;
  EXPECT_THROW(util::read_frame(fds[0], &payload), Error);
  ::close(fds[0]);
}

TEST(Framing, OversizedLengthPrefixIsRejected) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};  // ~4 GiB
  ASSERT_EQ(::write(fds[1], prefix, 4), 4);
  ::close(fds[1]);
  std::string payload;
  EXPECT_THROW(util::read_frame(fds[0], &payload), Error);
  ::close(fds[0]);
}

// ---- server round-trips ----------------------------------------------------

Json count_request(const std::string& graph, const std::string& tmpl,
                   int iterations, std::uint64_t seed) {
  Json request = Json::object();
  request["op"] = "count";
  request["graph"] = graph;
  Json tmpl_spec = Json::object();
  tmpl_spec["name"] = tmpl;
  request["template"] = std::move(tmpl_spec);
  Json options = Json::object();
  options["iterations"] = iterations;
  options["seed"] = seed;
  options["mode"] = "serial";
  request["options"] = std::move(options);
  return request;
}

TEST(SvcServer, CountOverTcpBitIdenticalToDirectCall) {
  const Graph graph = erdos_renyi_gnm(700, 2800, 13);
  CountOptions direct;
  direct.sampling.iterations = 6;
  direct.sampling.seed = 29;
  direct.execution.mode = ParallelMode::kSerial;
  const CountResult expected =
      count_template(graph, catalog_entry("U5-2").tree, direct);

  svc::Server::Config config;
  svc::Server server(config);
  server.service().registry().put("g", erdos_renyi_gnm(700, 2800, 13));
  server.start();
  svc::Client client = svc::Client::connect_tcp("127.0.0.1", server.port());

  const Json response = client.request(count_request("g", "U5-2", 6, 29));
  EXPECT_TRUE(response.get_bool("ok"));
  EXPECT_EQ(response.get_string("state"), "completed");
  // JSON doubles use shortest-exact formatting, so the wire value is
  // the library value, bit for bit.
  EXPECT_EQ(response.get_double("estimate"), expected.estimate);
  EXPECT_EQ(response.get_double("relative_stderr"), expected.relative_stderr);
  const Json* per_iteration = response.find("per_iteration");
  ASSERT_NE(per_iteration, nullptr);
  ASSERT_EQ(per_iteration->size(), expected.per_iteration.size());
  for (std::size_t i = 0; i < expected.per_iteration.size(); ++i) {
    EXPECT_EQ(per_iteration->elements()[i].as_double(),
              expected.per_iteration[i])
        << i;
  }
  client.shutdown();
  EXPECT_TRUE(server.wait_shutdown_for(10.0));
  server.stop();
}

TEST(SvcServer, StreamedCountEmitsProgressThenTerminal) {
  svc::Server::Config config;
  svc::Server server(config);
  server.service().registry().put("g", erdos_renyi_gnm(400, 1600, 7));
  server.start();
  svc::Client client = svc::Client::connect_tcp("127.0.0.1", server.port());

  std::vector<Json> events;
  client.on_event([&](const Json& event) { events.push_back(event); });
  Json request = count_request("g", "U5-1", 4, 3);
  request["stream"] = true;
  const Json response = client.request(request);

  EXPECT_TRUE(response.get_bool("ok"));
  // Even an instant job streams at least one progress frame, and every
  // frame identifies the job and carries a metrics delta.
  ASSERT_GE(events.size(), 1u);
  for (const Json& event : events) {
    EXPECT_EQ(event.get_string("event"), "progress");
    EXPECT_EQ(event.get_int("job"), response.get_int("job"));
    EXPECT_TRUE(event.contains("metrics"));
    EXPECT_TRUE(event.contains("state"));
  }
  server.stop();
}

TEST(SvcServer, GddOverTheWireMatchesDirectCall) {
  const Graph graph = erdos_renyi_gnm(250, 1000, 5);
  const int orbit = u52_central_vertex();
  CountOptions direct;
  direct.sampling.iterations = 3;
  direct.sampling.seed = 11;
  direct.execution.mode = ParallelMode::kSerial;
  const CountResult expected =
      graphlet_degrees(graph, catalog_entry("U5-2").tree, orbit, direct);

  svc::Server::Config config;
  svc::Server server(config);
  server.service().registry().put("g", erdos_renyi_gnm(250, 1000, 5));
  server.start();
  svc::Client client = svc::Client::connect_tcp("127.0.0.1", server.port());

  Json request = count_request("g", "U5-2", 3, 11);
  request["op"] = "gdd";
  request["orbit"] = orbit;
  const Json response = client.request(request);
  EXPECT_TRUE(response.get_bool("ok"));
  EXPECT_EQ(response.get_double("estimate"), expected.estimate);
  const Json* vertex_counts = response.find("vertex_counts");
  ASSERT_NE(vertex_counts, nullptr);
  ASSERT_EQ(vertex_counts->size(), expected.vertex_counts.size());
  for (std::size_t v = 0; v < expected.vertex_counts.size(); ++v) {
    ASSERT_EQ(vertex_counts->elements()[v].as_double(),
              expected.vertex_counts[v])
        << v;
  }
  server.stop();
}

TEST(SvcServer, BatchOverTheWireMatchesDirectCall) {
  const Graph graph = erdos_renyi_gnm(350, 1400, 9);
  std::vector<sched::BatchJob> jobs(2);
  jobs[0].tmpl = catalog_entry("U5-1").tree;
  jobs[0].iterations = 3;
  jobs[1].tmpl = catalog_entry("U5-2").tree;
  jobs[1].iterations = 3;
  sched::BatchOptions options;
  options.seed = 21;
  options.mode = ParallelMode::kSerial;
  const sched::BatchResult expected = sched::run_batch(graph, jobs, options);

  svc::Server::Config config;
  svc::Server server(config);
  server.service().registry().put("g", erdos_renyi_gnm(350, 1400, 9));
  server.start();
  svc::Client client = svc::Client::connect_tcp("127.0.0.1", server.port());

  Json request = Json::object();
  request["op"] = "run_batch";
  request["graph"] = "g";
  Json wire_jobs = Json::array();
  for (const char* name : {"U5-1", "U5-2"}) {
    Json job = Json::object();
    Json tmpl = Json::object();
    tmpl["name"] = name;
    job["template"] = std::move(tmpl);
    job["iterations"] = 3;
    wire_jobs.push_back(std::move(job));
  }
  request["jobs"] = std::move(wire_jobs);
  Json batch_options = Json::object();
  batch_options["seed"] = 21;
  batch_options["mode"] = "serial";
  request["options"] = std::move(batch_options);

  const Json response = client.request(request);
  EXPECT_TRUE(response.get_bool("ok"));
  EXPECT_EQ(response.get_double("estimate"), expected.estimate);
  const Json* job_results = response.find("jobs");
  ASSERT_NE(job_results, nullptr);
  ASSERT_EQ(job_results->size(), expected.jobs.size());
  for (std::size_t j = 0; j < expected.jobs.size(); ++j) {
    EXPECT_EQ(job_results->elements()[j].get_double("estimate"),
              expected.jobs[j].estimate)
        << j;
  }
  server.stop();
}

TEST(SvcServer, LoadGraphCachesByNameAndStatusSeesIt) {
  svc::Server::Config config;
  svc::Server server(config);
  server.start();
  svc::Client client = svc::Client::connect_tcp("127.0.0.1", server.port());

  const Json first = client.load_graph("tiny", "enron", "", 0.02, 1);
  ASSERT_TRUE(first.get_bool("ok"));
  EXPECT_FALSE(first.get_bool("cached"));
  EXPECT_GT(first.get_int("n"), 0);

  const Json second = client.load_graph("tiny", "enron", "", 0.02, 1);
  ASSERT_TRUE(second.get_bool("ok"));
  EXPECT_TRUE(second.get_bool("cached"));
  EXPECT_EQ(second.get_int("n"), first.get_int("n"));

  const Json status = client.status();
  ASSERT_TRUE(status.get_bool("ok"));
  const Json* registry = status.find("registry");
  ASSERT_NE(registry, nullptr);
  EXPECT_EQ(registry->get_int("graphs"), 1);
  const Json* names = status.find("graph_names");
  ASSERT_NE(names, nullptr);
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ(names->elements()[0].as_string(), "tiny");
  server.stop();
}

TEST(SvcServer, CancelOverASecondConnectionStopsAStreamedJob) {
  svc::Server::Config config;
  svc::Server server(config);
  server.service().registry().put("g", erdos_renyi_gnm(2500, 20000, 3));
  server.start();

  std::atomic<std::int64_t> job_id{0};
  std::atomic<bool> running{false};
  Json terminal;
  std::thread streamer([&] {
    svc::Client client = svc::Client::connect_tcp("127.0.0.1", server.port());
    client.on_event([&](const Json& event) {
      job_id.store(event.get_int("job"), std::memory_order_relaxed);
      if (event.get_string("state") == "running") {
        running.store(true, std::memory_order_relaxed);
      }
    });
    Json request = count_request("g", "U7-2", 4000, 1);
    request["stream"] = true;
    terminal = client.request(request);
  });

  while (!running.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  svc::Client canceller = svc::Client::connect_tcp("127.0.0.1", server.port());
  const Json cancelled = canceller.cancel(
      static_cast<std::uint64_t>(job_id.load(std::memory_order_relaxed)));
  EXPECT_TRUE(cancelled.get_bool("ok"));
  EXPECT_TRUE(cancelled.get_bool("cancelled"));

  streamer.join();
  // The streamed request still gets its terminal frame: an honest
  // partial result in state "cancelled".
  EXPECT_EQ(terminal.get_string("state"), "cancelled");
  EXPECT_TRUE(terminal.get_bool("ok"));
  server.stop();
}

TEST(SvcServer, MutateGraphAndRecountOverTheWire) {
  Graph mirror = erdos_renyi_gnm(600, 2400, 31);

  svc::Server::Config config;
  svc::Server server(config);
  server.service().registry().put("g", erdos_renyi_gnm(600, 2400, 31));
  server.start();
  svc::Client client = svc::Client::connect_tcp("127.0.0.1", server.port());

  // Feature detection: health advertises the protocol version and the
  // capability this test is about to use.
  Json health_req = Json::object();
  health_req["op"] = "health";
  const Json health = client.request(health_req);
  EXPECT_EQ(health.get_int("protocol", 0), svc::kProtocolVersion);
  EXPECT_TRUE(client.has_capability("mutate_graph"));

  // Retained incremental count.
  Json seed_req = count_request("g", "U5-1", 4, 17);
  seed_req["options"]["incremental"] = true;
  const Json seeded = client.request(seed_req);
  ASSERT_TRUE(seeded.get_bool("ok"));
  const std::int64_t job = seeded.get_int("job");

  // Stale optimistic-concurrency token: typed category plus the
  // current version, so the client can refresh and resend.
  Json delta = Json::object();
  Json remove = Json::array();
  const Edge gone = edge_list(mirror).front();
  Json pair = Json::array();
  pair.push_back(static_cast<std::int64_t>(gone.first));
  pair.push_back(static_cast<std::int64_t>(gone.second));
  remove.push_back(std::move(pair));
  delta["remove"] = std::move(remove);

  Json stale = Json::object();
  stale["op"] = "mutate_graph";
  stale["graph"] = "g";
  stale["expect_version"] = 9;
  stale["delta"] = delta;
  const Json refused = client.request(stale);
  EXPECT_FALSE(refused.get_bool("ok", true));
  EXPECT_EQ(refused.get_string("category"), "stale_version");
  EXPECT_EQ(refused.get_int("current_version", -1), 0);

  // Correct token: the mutation lands and reports the new version.
  const Json mutated = client.mutate_graph("g", delta, /*expect_version=*/0);
  ASSERT_TRUE(mutated.get_bool("ok"));
  EXPECT_EQ(mutated.get_int("version"), 1);
  EXPECT_EQ(mutated.get_int("applied_edges"), 1);

  // Recount over the wire: bit-identical to the direct full pass on
  // the mutated graph, with the dirty-set economics in the reply.
  GraphDelta applied;
  applied.remove(gone.first, gone.second);
  mirror.apply(applied);
  CountOptions direct;
  direct.sampling.iterations = 4;
  direct.sampling.seed = 17;
  direct.execution.mode = ParallelMode::kSerial;
  const CountResult expected =
      count_template(mirror, catalog_entry("U5-1").tree, direct);

  Json recount = Json::object();
  recount["op"] = "recount";
  recount["recount_of"] = job;
  const Json response = client.request(recount);
  ASSERT_TRUE(response.get_bool("ok"));
  EXPECT_EQ(response.get_double("estimate"), expected.estimate);
  const Json* stats = response.find("delta");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->get_int("graph_version"), 1);
  EXPECT_EQ(stats->get_int("applied_edges"), 1);
  EXPECT_GT(stats->get_int("dirty_vertices"), 0);
  server.stop();
}

TEST(SvcServer, MalformedRequestsGetTypedErrors) {
  svc::Server::Config config;
  svc::Server server(config);
  server.service().registry().put("g", erdos_renyi_gnm(100, 300, 1));
  server.start();
  svc::Client client = svc::Client::connect_tcp("127.0.0.1", server.port());

  Json bogus = Json::object();
  bogus["op"] = "frobnicate";
  EXPECT_FALSE(client.request(bogus).get_bool("ok", true));
  EXPECT_EQ(client.request(bogus).get_string("category"), "usage");

  // Unknown graph.
  const Json missing = client.request(count_request("absent", "U5-1", 1, 1));
  EXPECT_FALSE(missing.get_bool("ok", true));
  EXPECT_EQ(missing.get_string("category"), "usage");

  // Unknown option key is rejected, not silently ignored.
  Json typo = count_request("g", "U5-1", 1, 1);
  typo["options"]["iteratoins"] = 5;
  const Json rejected = client.request(typo);
  EXPECT_FALSE(rejected.get_bool("ok", true));

  // The connection survives all three errors.
  EXPECT_TRUE(client.status().get_bool("ok"));
  server.stop();
}

TEST(SvcServer, MalformedFrameCorpusGetsTypedErrorsNotCrashes) {
  svc::Server::Config config;
  svc::Server server(config);
  server.start();

  // Frame-layer garbage unsynchronizes the stream, so the server
  // replies with one typed error and closes.  Each case gets a fresh
  // raw socket; the server must survive them all.
  const auto expect_error_then_close = [&](auto&& send_garbage) {
    util::Socket raw = util::connect_tcp("127.0.0.1", server.port());
    send_garbage(raw);
    std::string payload;
    ASSERT_TRUE(util::read_frame(raw.fd(), &payload));
    std::optional<Json> reply = Json::parse(payload, nullptr);
    ASSERT_TRUE(reply.has_value());
    EXPECT_FALSE(reply->get_bool("ok", true));
    EXPECT_EQ(reply->get_string("category"), "bad input");
    EXPECT_FALSE(util::read_frame(raw.fd(), &payload));  // then EOF
  };
  // Truncated length prefix: two bytes, then hang up.
  expect_error_then_close([](util::Socket& raw) {
    const unsigned char half[2] = {0, 0};
    ASSERT_EQ(::write(raw.fd(), half, 2), 2);
    ::shutdown(raw.fd(), SHUT_WR);
  });
  // Length prefix claiming ~4 GiB.
  expect_error_then_close([](util::Socket& raw) {
    const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
    ASSERT_EQ(::write(raw.fd(), huge, 4), 4);
  });

  // Payload-layer garbage arrives in a well-formed frame, so the
  // server replies with a typed error and KEEPS the connection — a
  // follow-up valid request must succeed on the same socket.
  const auto expect_error_then_survive = [&](const std::string& payload_in,
                                             const std::string& category) {
    util::Socket raw = util::connect_tcp("127.0.0.1", server.port());
    util::write_frame(raw.fd(), payload_in);
    std::string payload;
    ASSERT_TRUE(util::read_frame(raw.fd(), &payload));
    std::optional<Json> reply = Json::parse(payload, nullptr);
    ASSERT_TRUE(reply.has_value());
    EXPECT_FALSE(reply->get_bool("ok", true));
    EXPECT_EQ(reply->get_string("category"), category);
    util::write_frame(raw.fd(), "{\"op\":\"status\"}");
    ASSERT_TRUE(util::read_frame(raw.fd(), &payload));
    reply = Json::parse(payload, nullptr);
    ASSERT_TRUE(reply.has_value());
    EXPECT_TRUE(reply->get_bool("ok", false));
  };
  expect_error_then_survive("{{{", "bad input");  // invalid JSON
  // Raw invalid-UTF-8 bytes parse as an opaque op name and die at
  // dispatch — still a typed error, still a live connection.
  expect_error_then_survive("{\"op\": \"stat\xff\xfe\"}", "usage");
  expect_error_then_survive("{\"op\":\"status\",\"op\":\"status\"}",
                            "bad input");  // duplicate keys

  server.stop();
}

TEST(SvcServer, MidStreamDisconnectCannotKillTheDaemon) {
  svc::Server::Config config;
  config.progress_interval_seconds = 0.01;
  config.service.shutdown_grace_seconds = 0.1;
  svc::Server server(config);
  server.service().registry().put("g", erdos_renyi_gnm(2500, 20000, 3));
  server.start();

  // Start a streamed long job on a raw socket, read one progress
  // frame, then vanish.  The server's next write hits a dead peer —
  // without MSG_NOSIGNAL that raises SIGPIPE and kills THIS process
  // (the server runs in-process here), failing the whole suite.
  {
    util::Socket raw = util::connect_tcp("127.0.0.1", server.port());
    Json request = count_request("g", "U7-2", 4000, 1);
    request["stream"] = true;
    util::write_frame(raw.fd(), request.dump());
    std::string payload;
    ASSERT_TRUE(util::read_frame(raw.fd(), &payload));
  }  // ~Socket: mid-stream disconnect
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // The daemon is alive and serving fresh connections.
  svc::Client client = svc::Client::connect_tcp("127.0.0.1", server.port());
  EXPECT_TRUE(client.status().get_bool("ok"));
  server.stop();
}

TEST(SvcServer, UnixSocketServesAndShutdownOpStopsTheServer) {
  svc::Server::Config config;
  config.port = -1;  // no TCP at all
  config.unix_path = ::testing::TempDir() + "fascia_test.sock";
  svc::Server server(config);
  server.service().registry().put("g", erdos_renyi_gnm(200, 800, 2));
  server.start();
  EXPECT_EQ(server.port(), -1);

  svc::Client client = svc::Client::connect_unix(config.unix_path);
  const Json response = client.request(count_request("g", "U5-1", 2, 1));
  EXPECT_TRUE(response.get_bool("ok"));
  EXPECT_EQ(response.get_string("state"), "completed");

  const Json bye = client.shutdown();
  EXPECT_TRUE(bye.get_bool("ok"));
  EXPECT_TRUE(bye.get_bool("shutting_down"));
  EXPECT_TRUE(server.wait_shutdown_for(10.0));
  server.stop();  // idempotent with the shutdown op
}

}  // namespace
}  // namespace fascia
