// Locality-aware reordering (DESIGN.md §9): permutation algebra, graph
// relabeling, and — the load-bearing invariant — estimates that are
// BIT-identical under any reorder mode, table layout, and parallel
// mode, with every per-vertex output keyed by original vertex ids.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/counter.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "helpers.hpp"
#include "treelet/catalog.hpp"

namespace fascia {
namespace {

const std::vector<ReorderMode> kAllModes = {
    ReorderMode::kNone, ReorderMode::kDegree, ReorderMode::kBfs,
    ReorderMode::kHybrid};

Graph shuffled_chung_lu(VertexId n, EdgeCount m, std::uint64_t seed) {
  // chung_lu emits near-degree-sorted graphs; shuffle so the reorder
  // passes have real work to undo.
  const Graph g = chung_lu(n, m, 2.2, n / 4, seed);
  return apply_permutation(g, random_permutation(g.num_vertices(), seed));
}

void attach_labels(Graph& g) {
  std::vector<std::uint8_t> labels(
      static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    labels[static_cast<std::size_t>(v)] =
        static_cast<std::uint8_t>((v * 7 + 3) % 4);
  }
  g.set_labels(std::move(labels), 4);
}

// ---- permutation algebra -------------------------------------------------

TEST(Permutation, IdentityAndInvertRoundTrip) {
  const Permutation id = identity_permutation(17);
  EXPECT_TRUE(id.is_identity());
  EXPECT_EQ(id.size(), 17);

  Permutation p = random_permutation(101, 5);
  EXPECT_EQ(p.size(), 101);
  for (VertexId v = 0; v < p.size(); ++v) {
    EXPECT_EQ(p.to_new[static_cast<std::size_t>(
                  p.to_old[static_cast<std::size_t>(v)])],
              v);
    EXPECT_EQ(p.to_old[static_cast<std::size_t>(
                  p.to_new[static_cast<std::size_t>(v)])],
              v);
  }
}

TEST(Permutation, EveryModeYieldsABijection) {
  const Graph g = shuffled_chung_lu(400, 1600, 9);
  for (ReorderMode mode : kAllModes) {
    const Permutation p = reorder_permutation(g, mode);
    ASSERT_EQ(p.size(), g.num_vertices()) << reorder_mode_name(mode);
    std::vector<char> seen(static_cast<std::size_t>(p.size()), 0);
    for (VertexId v = 0; v < p.size(); ++v) {
      const VertexId image = p.to_new[static_cast<std::size_t>(v)];
      ASSERT_GE(image, 0);
      ASSERT_LT(image, p.size());
      ASSERT_FALSE(seen[static_cast<std::size_t>(image)])
          << reorder_mode_name(mode);
      seen[static_cast<std::size_t>(image)] = 1;
      EXPECT_EQ(p.to_old[static_cast<std::size_t>(image)], v);
    }
  }
}

TEST(Permutation, ApplyPreservesStructureAndLabels) {
  Graph g = shuffled_chung_lu(300, 900, 3);
  attach_labels(g);
  for (ReorderMode mode : kAllModes) {
    const Permutation p = reorder_permutation(g, mode);
    const Graph r = apply_permutation(g, p);
    ASSERT_EQ(r.num_vertices(), g.num_vertices());
    ASSERT_EQ(r.num_edges(), g.num_edges());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const VertexId rv = p.to_new[static_cast<std::size_t>(v)];
      EXPECT_EQ(r.degree(rv), g.degree(v));
      EXPECT_EQ(r.label(rv), g.label(v));
      for (VertexId u : g.neighbors(v)) {
        EXPECT_TRUE(r.has_edge(rv, p.to_new[static_cast<std::size_t>(u)]));
      }
    }
  }
}

TEST(Permutation, DegreeModeSortsDescending) {
  const Graph g = shuffled_chung_lu(500, 2500, 21);
  const Permutation p = reorder_permutation(g, ReorderMode::kDegree);
  const Graph r = apply_permutation(g, p);
  for (VertexId v = 0; v + 1 < r.num_vertices(); ++v) {
    EXPECT_GE(r.degree(v), r.degree(v + 1));
  }
}

TEST(Permutation, LocalityPassesShrinkGapOfShuffledGraph) {
  const Graph g = shuffled_chung_lu(2000, 10000, 13);
  const double before = avg_neighbor_gap(g);
  for (ReorderMode mode : {ReorderMode::kBfs, ReorderMode::kHybrid}) {
    const Graph r =
        apply_permutation(g, reorder_permutation(g, mode));
    EXPECT_LT(avg_neighbor_gap(r), before) << reorder_mode_name(mode);
  }
}

TEST(ReorderMode, NamesParseRoundTrip) {
  for (ReorderMode mode : kAllModes) {
    EXPECT_EQ(parse_reorder_mode(reorder_mode_name(mode)), mode);
  }
  EXPECT_THROW(parse_reorder_mode("zorder"), std::invalid_argument);
}

// ---- bit-identical counting ----------------------------------------------

CountOptions reorder_options(ReorderMode reorder, ParallelMode mode,
                             TableKind table) {
  CountOptions options;
  options.sampling.iterations = 4;
  options.sampling.seed = 77;
  options.execution.reorder = reorder;
  options.execution.mode = mode;
  options.execution.table = table;
  return options;
}

TEST(ReorderCounting, BitIdenticalAcrossModesTablesAndLayouts) {
  const Graph g = shuffled_chung_lu(600, 3000, 17);
  const TreeTemplate& tree = catalog_entry("U7-1").tree;

  for (TableKind table :
       {TableKind::kNaive, TableKind::kCompact, TableKind::kHash,
        TableKind::kSuccinct}) {
    const CountResult reference = count_template(
        g, tree,
        reorder_options(ReorderMode::kNone, ParallelMode::kSerial, table));
    for (ReorderMode reorder : kAllModes) {
      for (ParallelMode mode :
           {ParallelMode::kSerial, ParallelMode::kInnerLoop,
            ParallelMode::kOuterLoop, ParallelMode::kHybrid}) {
        const CountResult result =
            count_template(g, tree, reorder_options(reorder, mode, table));
        ASSERT_EQ(result.per_iteration.size(),
                  reference.per_iteration.size());
        for (std::size_t i = 0; i < reference.per_iteration.size(); ++i) {
          EXPECT_DOUBLE_EQ(result.per_iteration[i],
                           reference.per_iteration[i])
              << "table=" << static_cast<int>(table)
              << " reorder=" << reorder_mode_name(reorder)
              << " mode=" << parallel_mode_name(mode) << " iter=" << i;
        }
        EXPECT_DOUBLE_EQ(result.estimate, reference.estimate);
      }
    }
  }
}

TEST(ReorderCounting, BitIdenticalAgainstReferenceKernels) {
  const Graph g = shuffled_chung_lu(400, 2000, 29);
  const TreeTemplate& tree = catalog_entry("U7-2").tree;

  CountOptions reference_options = reorder_options(
      ReorderMode::kNone, ParallelMode::kSerial, TableKind::kCompact);
  reference_options.execution.reference_kernels = true;
  const CountResult reference = count_template(g, tree, reference_options);

  for (ReorderMode reorder : kAllModes) {
    const CountResult result = count_template(
        g, tree,
        reorder_options(reorder, ParallelMode::kHybrid, TableKind::kCompact));
    ASSERT_EQ(result.per_iteration.size(), reference.per_iteration.size());
    for (std::size_t i = 0; i < reference.per_iteration.size(); ++i) {
      EXPECT_DOUBLE_EQ(result.per_iteration[i], reference.per_iteration[i])
          << reorder_mode_name(reorder) << " iter=" << i;
    }
  }
}

TEST(ReorderCounting, SpmmFamilyBitIdenticalAcrossReorders) {
  // Reordering permutes the SpMM frontier rows and the vertex -> row
  // remap, but per-column accumulation still walks neighbors in
  // (relabeled) CSR order, so the family stays bit-identical to the
  // reference kernels under every permutation.
  const Graph g = shuffled_chung_lu(400, 2000, 29);
  const TreeTemplate& tree = catalog_entry("U7-2").tree;

  CountOptions reference_options = reorder_options(
      ReorderMode::kNone, ParallelMode::kSerial, TableKind::kCompact);
  reference_options.execution.reference_kernels = true;
  const CountResult reference = count_template(g, tree, reference_options);

  for (ReorderMode reorder : kAllModes) {
    for (TableKind table : {TableKind::kNaive, TableKind::kHash}) {
      CountOptions options =
          reorder_options(reorder, ParallelMode::kHybrid, table);
      options.execution.kernel_family = KernelFamily::kSpmm;
      const CountResult result = count_template(g, tree, options);
      ASSERT_EQ(result.per_iteration.size(), reference.per_iteration.size());
      for (std::size_t i = 0; i < reference.per_iteration.size(); ++i) {
        EXPECT_DOUBLE_EQ(result.per_iteration[i], reference.per_iteration[i])
            << reorder_mode_name(reorder)
            << " table=" << table_kind_name(table) << " iter=" << i;
      }
    }
  }
}

TEST(ReorderCounting, LabeledBitIdenticalAcrossReorders) {
  Graph g = shuffled_chung_lu(500, 2500, 31);
  attach_labels(g);
  TreeTemplate tree = catalog_entry("U5-1").tree;
  tree.set_labels({0, 1, 2, 1, 0});

  const CountResult reference = count_template(
      g, tree,
      reorder_options(ReorderMode::kNone, ParallelMode::kSerial,
                      TableKind::kCompact));
  for (ReorderMode reorder :
       {ReorderMode::kDegree, ReorderMode::kBfs, ReorderMode::kHybrid}) {
    for (TableKind table :
         {TableKind::kCompact, TableKind::kHash, TableKind::kSuccinct}) {
      const CountResult result = count_template(
          g, tree, reorder_options(reorder, ParallelMode::kHybrid, table));
      ASSERT_EQ(result.per_iteration.size(),
                reference.per_iteration.size());
      for (std::size_t i = 0; i < reference.per_iteration.size(); ++i) {
        EXPECT_DOUBLE_EQ(result.per_iteration[i],
                         reference.per_iteration[i])
            << reorder_mode_name(reorder) << " iter=" << i;
      }
    }
  }
}

TEST(ReorderCounting, GraphletDegreesKeyedByOriginalIds) {
  const Graph g = shuffled_chung_lu(300, 1200, 41);
  const TreeTemplate& tree = catalog_entry("U5-2").tree;

  CountOptions options = reorder_options(
      ReorderMode::kNone, ParallelMode::kSerial, TableKind::kCompact);
  const CountResult reference = graphlet_degrees(g, tree, 0, options);
  ASSERT_EQ(reference.vertex_counts.size(),
            static_cast<std::size_t>(g.num_vertices()));

  for (ReorderMode reorder :
       {ReorderMode::kDegree, ReorderMode::kBfs, ReorderMode::kHybrid}) {
    options.execution.reorder = reorder;
    const CountResult result = graphlet_degrees(g, tree, 0, options);
    ASSERT_EQ(result.vertex_counts.size(), reference.vertex_counts.size());
    for (std::size_t v = 0; v < reference.vertex_counts.size(); ++v) {
      EXPECT_DOUBLE_EQ(result.vertex_counts[v], reference.vertex_counts[v])
          << reorder_mode_name(reorder) << " v=" << v;
    }
  }
}

TEST(ReorderCounting, InstrumentationFilledOnlyWhenReordering) {
  const Graph g = shuffled_chung_lu(300, 1500, 43);
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  const CountResult plain = count_template(
      g, tree,
      reorder_options(ReorderMode::kNone, ParallelMode::kSerial,
                      TableKind::kCompact));
  EXPECT_EQ(plain.reorder_gap_before, 0.0);
  EXPECT_EQ(plain.reorder_gap_after, 0.0);

  const CountResult reordered = count_template(
      g, tree,
      reorder_options(ReorderMode::kHybrid, ParallelMode::kSerial,
                      TableKind::kCompact));
  EXPECT_GT(reordered.reorder_gap_before, 0.0);
  EXPECT_GT(reordered.reorder_gap_after, 0.0);
}

// ---- checkpoint/resume across reorder modes ------------------------------

TEST(ReorderCounting, CheckpointResumeAcrossReorderModesBitIdentical) {
  const Graph g = shuffled_chung_lu(300, 1200, 53);
  const TreeTemplate& tree = catalog_entry("U7-1").tree;
  const std::string path =
      ::testing::TempDir() + "reorder_resume.fascia-ckpt";
  std::remove(path.c_str());

  CountOptions options = reorder_options(
      ReorderMode::kNone, ParallelMode::kSerial, TableKind::kCompact);
  options.sampling.iterations = 8;
  options.per_vertex = true;
  const CountResult uninterrupted = count_template(g, tree, options);

  // First half under kDegree, checkpointing every 2 iterations ...
  CountOptions first = options;
  first.sampling.iterations = 4;
  first.execution.reorder = ReorderMode::kDegree;
  first.run.checkpoint_path = path;
  first.run.checkpoint_every = 2;
  const CountResult half = count_template(g, tree, first);
  ASSERT_EQ(half.per_iteration.size(), 4u);
  ASSERT_GT(half.run.checkpoints_written, 0);

  // ... then resume to the full budget under a DIFFERENT reorder mode:
  // reorder is excluded from the fingerprint and per-vertex state is
  // stored in original-id space, so the estimates must match the
  // uninterrupted run bit-for-bit.
  CountOptions second = options;
  second.execution.reorder = ReorderMode::kBfs;
  second.run.checkpoint_path = path;
  second.run.checkpoint_every = 2;
  second.run.resume = true;
  const CountResult resumed = count_template(g, tree, second);
  EXPECT_TRUE(resumed.run.resumed);
  ASSERT_EQ(resumed.per_iteration.size(),
            uninterrupted.per_iteration.size());
  for (std::size_t i = 0; i < uninterrupted.per_iteration.size(); ++i) {
    EXPECT_DOUBLE_EQ(resumed.per_iteration[i],
                     uninterrupted.per_iteration[i])
        << "iter=" << i;
  }
  ASSERT_EQ(resumed.vertex_counts.size(),
            uninterrupted.vertex_counts.size());
  for (std::size_t v = 0; v < uninterrupted.vertex_counts.size(); ++v) {
    EXPECT_DOUBLE_EQ(resumed.vertex_counts[v],
                     uninterrupted.vertex_counts[v])
        << "v=" << v;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fascia
