#include "treelet/tree_template.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include "util/error.hpp"

namespace fascia {
namespace {

TEST(TreeTemplate, PathShape) {
  const TreeTemplate t = TreeTemplate::path(5);
  EXPECT_EQ(t.size(), 5);
  EXPECT_EQ(t.num_edges(), 4);
  EXPECT_EQ(t.degree(0), 1);
  EXPECT_EQ(t.degree(2), 2);
  EXPECT_TRUE(t.has_edge(1, 2));
  EXPECT_FALSE(t.has_edge(0, 2));
}

TEST(TreeTemplate, StarShape) {
  const TreeTemplate t = TreeTemplate::star(6);
  EXPECT_EQ(t.degree(0), 5);
  for (int v = 1; v < 6; ++v) EXPECT_EQ(t.degree(v), 1);
}

TEST(TreeTemplate, SingleVertex) {
  const TreeTemplate t = TreeTemplate::from_edges(1, {});
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.num_edges(), 0);
}

TEST(TreeTemplate, RejectsWrongEdgeCount) {
  EXPECT_THROW(TreeTemplate::from_edges(3, {{0, 1}}), fascia::Error);
  EXPECT_THROW(TreeTemplate::from_edges(2, {{0, 1}, {0, 1}}),
               fascia::Error);
}

TEST(TreeTemplate, RejectsCycleDisguisedAsTree) {
  // 4 vertices, 3 edges, but contains a triangle + isolated vertex.
  EXPECT_THROW(TreeTemplate::from_edges(4, {{0, 1}, {1, 2}, {2, 0}}),
               fascia::Error);
}

TEST(TreeTemplate, RejectsSelfLoopAndDuplicates) {
  EXPECT_THROW(TreeTemplate::from_edges(2, {{0, 0}}), fascia::Error);
  EXPECT_THROW(TreeTemplate::from_edges(3, {{0, 1}, {1, 0}}),
               fascia::Error);
}

TEST(TreeTemplate, RejectsOutOfRange) {
  EXPECT_THROW(TreeTemplate::from_edges(2, {{0, 2}}), fascia::Error);
  EXPECT_THROW(TreeTemplate::from_edges(0, {}), fascia::Error);
  EXPECT_THROW(TreeTemplate::from_edges(kMaxTemplateSize + 1, {}),
               fascia::Error);
}

TEST(TreeTemplate, EdgesNormalized) {
  const TreeTemplate t = TreeTemplate::from_edges(3, {{2, 1}, {1, 0}});
  const TreeTemplate::EdgeList expected = {{0, 1}, {1, 2}};
  EXPECT_EQ(t.edges(), expected);
}

TEST(TreeTemplate, ParseBasic) {
  const TreeTemplate t = TreeTemplate::parse("# comment\n4\n0 1\n1 2\n1 3\n");
  EXPECT_EQ(t.size(), 4);
  EXPECT_EQ(t.degree(1), 3);
  EXPECT_FALSE(t.has_labels());
}

TEST(TreeTemplate, ParseWithLabels) {
  const TreeTemplate t =
      TreeTemplate::parse("3\n0 1\n1 2\nlabel 5\nlabel 0\nlabel 5\n");
  ASSERT_TRUE(t.has_labels());
  EXPECT_EQ(t.label(0), 5);
  EXPECT_EQ(t.label(1), 0);
  EXPECT_EQ(t.label(2), 5);
}

TEST(TreeTemplate, ParseErrors) {
  EXPECT_THROW(TreeTemplate::parse(""), fascia::Error);
  EXPECT_THROW(TreeTemplate::parse("3\n0 1\n"), fascia::Error);
  EXPECT_THROW(TreeTemplate::parse("2\n0 1\nlabel bad\n"),
               fascia::Error);
}

TEST(TreeTemplate, LoadFromFile) {
  const std::string path = ::testing::TempDir() + "fascia_template.txt";
  {
    std::ofstream out(path);
    out << "3\n0 1\n1 2\n";
  }
  const TreeTemplate t = TreeTemplate::load(path);
  EXPECT_EQ(t.size(), 3);
  std::remove(path.c_str());
  EXPECT_THROW(TreeTemplate::load("/no/file"), std::runtime_error);
}

TEST(TreeTemplate, LabelValidation) {
  TreeTemplate t = TreeTemplate::path(3);
  EXPECT_THROW(t.set_labels({0, 1}), fascia::Error);
  t.set_labels({0, 1, 2});
  EXPECT_TRUE(t.has_labels());
  t.clear_labels();
  EXPECT_FALSE(t.has_labels());
}

TEST(TreeTemplate, DescribeMentionsEdgesAndLabels) {
  TreeTemplate t = TreeTemplate::path(3);
  EXPECT_NE(t.describe().find("0-1"), std::string::npos);
  t.set_labels({1, 2, 3});
  EXPECT_NE(t.describe().find("labels"), std::string::npos);
}

}  // namespace
}  // namespace fascia
