// Tests for the "tree-like templates with triangles" extension:
// MixedTemplate validation, block detection, automorphisms, the
// triangle-join DP (per-coloring exactness against brute force), and
// estimator convergence.

#include <gtest/gtest.h>

#include "core/coloring.hpp"
#include "core/counter.hpp"
#include "core/mixed_counter.hpp"
#include "core/mixed_engine.hpp"
#include "core/mixed_extract.hpp"
#include "core/triangle.hpp"
#include "dp/table_compact.hpp"
#include "exact/backtrack.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/labels.hpp"
#include "helpers.hpp"
#include "treelet/mixed_partition.hpp"
#include "util/error.hpp"

namespace fascia {
namespace {

// ---- named mixed templates used throughout ------------------------------

MixedTemplate paw() {  // triangle + pendant edge
  return MixedTemplate::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
}

MixedTemplate bull() {  // triangle + two horns
  return MixedTemplate::from_edges(
      5, {{0, 1}, {1, 2}, {0, 2}, {0, 3}, {1, 4}});
}

MixedTemplate tailed_triangle() {  // triangle + path of 2 hanging off
  return MixedTemplate::from_edges(
      5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
}

MixedTemplate two_triangles_shared_vertex() {  // bowtie
  return MixedTemplate::from_edges(
      5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}});
}

Graph test_graph() {
  static const Graph g = largest_component(erdos_renyi_gnm(35, 110, 51));
  return g;
}

// ---- validation ----------------------------------------------------------

TEST(MixedTemplate, AcceptsTreesAndTriangleBlocks) {
  EXPECT_TRUE(MixedTemplate::from_edges(4, {{0, 1}, {1, 2}, {2, 3}}).is_tree());
  EXPECT_EQ(paw().triangles().size(), 1u);
  EXPECT_EQ(bull().triangles().size(), 1u);
  EXPECT_EQ(two_triangles_shared_vertex().triangles().size(), 2u);
  EXPECT_EQ(MixedTemplate::triangle().triangles().size(), 1u);
}

TEST(MixedTemplate, RejectsLargerBlocks) {
  // 4-cycle: one block of 4 vertices.
  EXPECT_THROW(
      MixedTemplate::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}),
      fascia::Error);
  // Diamond (two triangles sharing an edge) is a single 4-vertex block.
  EXPECT_THROW(MixedTemplate::from_edges(
                   4, {{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}}),
               fascia::Error);
  // K4.
  EXPECT_THROW(
      MixedTemplate::from_edges(
          4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}),
      fascia::Error);
}

TEST(MixedTemplate, RejectsDisconnectedAndMalformed) {
  EXPECT_THROW(MixedTemplate::from_edges(4, {{0, 1}, {2, 3}}),
               fascia::Error);
  EXPECT_THROW(MixedTemplate::from_edges(2, {{0, 0}}), fascia::Error);
  EXPECT_THROW(MixedTemplate::from_edges(2, {{0, 1}, {1, 0}}),
               fascia::Error);
}

TEST(MixedTemplate, EdgeInTriangle) {
  const MixedTemplate t = paw();
  EXPECT_TRUE(t.edge_in_triangle(0, 1));
  EXPECT_TRUE(t.edge_in_triangle(2, 0));
  EXPECT_FALSE(t.edge_in_triangle(2, 3));
}

TEST(MixedTemplate, TreeRoundTrip) {
  const TreeTemplate tree = TreeTemplate::path(4);
  const MixedTemplate mixed = MixedTemplate::from_tree(tree);
  EXPECT_TRUE(mixed.is_tree());
  EXPECT_EQ(mixed.as_tree().edges(), tree.edges());
  EXPECT_THROW(paw().as_tree(), fascia::Error);
}

// ---- automorphisms -------------------------------------------------------

TEST(MixedTemplate, KnownAutomorphismCounts) {
  EXPECT_EQ(mixed_automorphisms(MixedTemplate::triangle()), 6u);
  EXPECT_EQ(mixed_automorphisms(paw()), 2u);   // swap the two far corners
  EXPECT_EQ(mixed_automorphisms(bull()), 2u);  // mirror
  EXPECT_EQ(mixed_automorphisms(two_triangles_shared_vertex()), 8u);
  EXPECT_EQ(mixed_automorphisms(MixedTemplate::from_tree(
                TreeTemplate::star(5))),
            24u);
}

TEST(MixedTemplate, LabeledAutomorphisms) {
  MixedTemplate t = MixedTemplate::triangle();
  t.set_labels({0, 0, 1});
  EXPECT_EQ(mixed_automorphisms(t), 2u);
  t.set_labels({0, 1, 2});
  EXPECT_EQ(mixed_automorphisms(t), 1u);
}

TEST(MixedTemplate, OrbitsOfPaw) {
  const auto orbits = mixed_vertex_orbits(paw());
  // Vertices 0,1 (triangle corners away from the tail) share an orbit;
  // 2 (attachment) and 3 (tail) are alone.
  EXPECT_EQ(orbits[0], orbits[1]);
  EXPECT_NE(orbits[0], orbits[2]);
  EXPECT_NE(orbits[2], orbits[3]);
}

// ---- partition structure -------------------------------------------------

TEST(MixedPartition, TriangleJoinAppears) {
  const auto partition = partition_mixed_template(paw());
  bool has_triangle_join = false;
  for (const auto& node : partition.nodes()) {
    if (node.kind == MixedSubtemplate::Kind::kTriangleJoin) {
      has_triangle_join = true;
      EXPECT_GE(node.passive, 0);
      EXPECT_GE(node.passive2, 0);
    }
  }
  EXPECT_TRUE(has_triangle_join);
  EXPECT_EQ(partition.nodes().back().size(), 4);
}

TEST(MixedPartition, TreeHasOnlyEdgeJoins) {
  const auto partition =
      partition_mixed_template(MixedTemplate::from_tree(TreeTemplate::path(5)));
  for (const auto& node : partition.nodes()) {
    EXPECT_NE(node.kind, MixedSubtemplate::Kind::kTriangleJoin);
  }
}

TEST(MixedPartition, RootOverride) {
  for (int root = 0; root < 4; ++root) {
    EXPECT_EQ(partition_mixed_template(paw(), root).template_root(), root);
  }
  EXPECT_THROW(partition_mixed_template(paw(), 9), fascia::Error);
}

// ---- DP correctness: per-coloring equality with brute force --------------

class MixedPerColoring : public ::testing::TestWithParam<int> {};

TEST_P(MixedPerColoring, DpMatchesBruteForceColorful) {
  const Graph g = test_graph();
  const std::vector<MixedTemplate> templates = {
      MixedTemplate::triangle(), paw(), bull(), tailed_triangle(),
      two_triangles_shared_vertex()};
  const int seed_offset = GetParam();
  for (const auto& tmpl : templates) {
    const int k = tmpl.size();
    const auto colors = detail::random_coloring(
        g, k, static_cast<std::uint64_t>(900 + seed_offset));
    const double brute = testing::brute_force_maps(
        g, tmpl, std::vector<std::uint8_t>(colors.begin(), colors.end()));
    for (int root : {-1, 0, tmpl.size() - 1}) {
      const auto partition = partition_mixed_template(tmpl, root);
      MixedDpEngine<CompactTable> engine(g, tmpl, partition, k);
      const double raw = engine.run(colors, /*parallel_inner=*/false);
      ASSERT_NEAR(raw, brute, 1e-6 * (1.0 + brute))
          << tmpl.describe() << " root=" << root;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedPerColoring, ::testing::Values(0, 1, 2));

// ---- estimator behaviour ---------------------------------------------------

TEST(MixedCounter, ConvergesToExactCounts) {
  const Graph g = test_graph();
  for (const auto& tmpl : {paw(), bull(), tailed_triangle()}) {
    const double exact = exact::count_embeddings(g, tmpl);
    ASSERT_GT(exact, 0.0) << tmpl.describe();
    CountOptions options;
    options.sampling.iterations = 2500;
    options.execution.mode = ParallelMode::kSerial;
    options.sampling.seed = 11;
    const CountResult result = count_mixed_template(g, tmpl, options);
    EXPECT_NEAR(result.estimate, exact, exact * 0.12) << tmpl.describe();
  }
}

TEST(MixedCounter, TriangleAgreesWithSpecializedCounter) {
  const Graph g = test_graph();
  CountOptions options;
  options.sampling.iterations = 3000;
  options.execution.mode = ParallelMode::kSerial;
  const CountResult via_dp =
      count_mixed_template(g, MixedTemplate::triangle(), options);
  const double exact = exact_triangle_count(g);
  EXPECT_NEAR(via_dp.estimate, exact, exact * 0.1 + 0.5);
  EXPECT_EQ(via_dp.automorphisms, 6u);
}

TEST(MixedCounter, TreeDelegationMatchesTreePipeline) {
  const Graph g = test_graph();
  const TreeTemplate tree = TreeTemplate::path(5);
  CountOptions options;
  options.sampling.iterations = 5;
  options.execution.mode = ParallelMode::kSerial;
  const CountResult direct = count_template(g, tree, options);
  const CountResult delegated =
      count_mixed_template(g, MixedTemplate::from_tree(tree), options);
  EXPECT_EQ(direct.per_iteration, delegated.per_iteration);
}

TEST(MixedCounter, DeterministicAcrossModesAndTables) {
  const Graph g = test_graph();
  const MixedTemplate tmpl = bull();
  CountOptions base;
  base.sampling.iterations = 4;
  base.execution.mode = ParallelMode::kSerial;
  base.sampling.seed = 77;
  const CountResult reference = count_mixed_template(g, tmpl, base);
  for (TableKind table :
       {TableKind::kNaive, TableKind::kCompact, TableKind::kHash}) {
    for (auto mode : {ParallelMode::kSerial, ParallelMode::kInnerLoop,
                      ParallelMode::kOuterLoop}) {
      CountOptions options = base;
      options.execution.table = table;
      options.execution.mode = mode;
      const CountResult result = count_mixed_template(g, tmpl, options);
      for (std::size_t i = 0; i < result.per_iteration.size(); ++i) {
        EXPECT_NEAR(result.per_iteration[i], reference.per_iteration[i],
                    1e-9 * (1.0 + std::abs(reference.per_iteration[i])));
      }
    }
  }
}

TEST(MixedCounter, LabeledMixedCounting) {
  Graph g = test_graph();
  assign_random_labels(g, 2, 31);
  MixedTemplate tmpl = paw();
  tmpl.set_labels({0, 0, 1, 1});
  const double exact = exact::count_embeddings(g, tmpl);
  CountOptions options;
  options.sampling.iterations = 3000;
  options.execution.mode = ParallelMode::kSerial;
  const CountResult result = count_mixed_template(g, tmpl, options);
  if (exact > 0.0) {
    EXPECT_NEAR(result.estimate, exact, exact * 0.2 + 0.5);
  } else {
    EXPECT_DOUBLE_EQ(result.estimate, 0.0);
  }
}

TEST(MixedCounter, ExtraColorsReduceVarianceDirectionally) {
  const Graph g = test_graph();
  const MixedTemplate tmpl = paw();
  CountOptions options;
  options.sampling.iterations = 1;
  options.execution.mode = ParallelMode::kSerial;
  options.sampling.num_colors = 8;
  const CountResult result = count_mixed_template(g, tmpl, options);
  EXPECT_GT(result.colorful_probability, colorful_probability(4, 4));
}

TEST(MixedCounter, OptionValidation) {
  const Graph g = test_graph();
  CountOptions options;
  options.sampling.iterations = 0;
  EXPECT_THROW(count_mixed_template(g, paw(), options), std::invalid_argument);
  options.sampling.iterations = 1;
  options.sampling.num_colors = 3;
  EXPECT_THROW(count_mixed_template(g, paw(), options), std::invalid_argument);
  options.sampling.num_colors = 0;
  options.per_vertex = true;
  EXPECT_THROW(count_mixed_template(g, paw(), options), std::invalid_argument);
}

// ---- extraction ------------------------------------------------------------

TEST(MixedExtract, SampledEmbeddingsValid) {
  const Graph g = test_graph();
  for (const auto& tmpl :
       {MixedTemplate::triangle(), paw(), bull(),
        two_triangles_shared_vertex()}) {
    CountOptions options;
    options.sampling.seed = 17;
    const auto embeddings = sample_mixed_embeddings(g, tmpl, 12, options);
    EXPECT_GT(embeddings.size(), 0u) << tmpl.describe();
    for (const auto& embedding : embeddings) {
      EXPECT_TRUE(is_valid_mixed_embedding(g, tmpl, embedding))
          << tmpl.describe();
    }
  }
}

TEST(MixedExtract, TreeDelegates) {
  const Graph g = test_graph();
  const MixedTemplate tree = MixedTemplate::from_tree(TreeTemplate::path(4));
  const auto embeddings = sample_mixed_embeddings(g, tree, 5);
  EXPECT_EQ(embeddings.size(), 5u);
  for (const auto& embedding : embeddings) {
    EXPECT_TRUE(is_valid_mixed_embedding(g, tree, embedding));
  }
}

TEST(MixedExtract, NoEmbeddingsInTriangleFreeGraph) {
  const Graph g = testing::path_graph(12);
  EXPECT_TRUE(
      sample_mixed_embeddings(g, MixedTemplate::triangle(), 5).empty());
}

TEST(MixedExtract, ValidatorChecksTriangleEdges) {
  const Graph g = testing::complete_graph(4);
  const MixedTemplate tri = MixedTemplate::triangle();
  EXPECT_TRUE(is_valid_mixed_embedding(g, tri, {{0, 1, 2}}));
  EXPECT_FALSE(is_valid_mixed_embedding(g, tri, {{0, 1, 1}}));
  EXPECT_FALSE(is_valid_mixed_embedding(g, tri, {{0, 1}}));
  const Graph path = testing::path_graph(4);
  EXPECT_FALSE(is_valid_mixed_embedding(path, tri, {{0, 1, 2}}));
}

// ---- parsing ---------------------------------------------------------------

TEST(MixedTemplate, ParseWithTriangle) {
  const MixedTemplate t =
      MixedTemplate::parse("# paw\n4\n0 1\n1 2\n0 2\n2 3\n");
  EXPECT_EQ(t.size(), 4);
  EXPECT_EQ(t.triangles().size(), 1u);
  EXPECT_THROW(MixedTemplate::parse(""), fascia::Error);
  EXPECT_THROW(MixedTemplate::parse("3\n0 1\n"), fascia::Error);
  EXPECT_THROW(MixedTemplate::load("/no/file"), std::runtime_error);
}

TEST(MixedTemplate, ParseLabels) {
  const MixedTemplate t = MixedTemplate::parse(
      "3\n0 1\n1 2\n0 2\nlabel 1\nlabel 0\nlabel 1\n");
  ASSERT_TRUE(t.has_labels());
  EXPECT_EQ(t.label(0), 1);
  EXPECT_EQ(t.label(1), 0);
}

// ---- exact backtracking on mixed templates --------------------------------

TEST(MixedExact, HandCounts) {
  // Paw in K4: choose the tail vertex's attachment... count via maps:
  // K4 has 4 triangles; each triangle has 3 corners to attach the tail,
  // 1 remaining vertex: 4 * 3 * 1 = 12 paw copies.
  EXPECT_DOUBLE_EQ(exact::count_embeddings(testing::complete_graph(4), paw()),
                   12.0);
  // Triangle count in K5 = C(5,3) = 10.
  EXPECT_DOUBLE_EQ(exact::count_embeddings(testing::complete_graph(5),
                                           MixedTemplate::triangle()),
                   10.0);
  // No triangles in a tree.
  EXPECT_DOUBLE_EQ(
      exact::count_embeddings(testing::path_graph(10), MixedTemplate::triangle()),
      0.0);
}

TEST(MixedExact, MapsAreAlphaTimesEmbeddings) {
  const Graph g = test_graph();
  for (const auto& tmpl : {paw(), bull(), two_triangles_shared_vertex()}) {
    EXPECT_DOUBLE_EQ(
        exact::count_maps(g, tmpl),
        exact::count_embeddings(g, tmpl) *
            static_cast<double>(mixed_automorphisms(tmpl)));
  }
}

}  // namespace
}  // namespace fascia
