#include "treelet/canonical.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "treelet/free_trees.hpp"
#include "util/error.hpp"

namespace fascia {
namespace {

TEST(Canonical, RootedEqualityDetectsSymmetry) {
  // Path 0-1-2: ends are equivalent, middle is not.
  const TreeTemplate path = TreeTemplate::path(3);
  EXPECT_EQ(ahu_rooted(path, 0), ahu_rooted(path, 2));
  EXPECT_NE(ahu_rooted(path, 0), ahu_rooted(path, 1));
}

TEST(Canonical, CentroidsOfPath) {
  EXPECT_EQ(centroids(TreeTemplate::path(5)), (std::vector<int>{2}));
  EXPECT_EQ(centroids(TreeTemplate::path(4)), (std::vector<int>{1, 2}));
  EXPECT_EQ(centroids(TreeTemplate::path(1)), (std::vector<int>{0}));
  EXPECT_EQ(centroids(TreeTemplate::path(2)), (std::vector<int>{0, 1}));
}

TEST(Canonical, CentroidOfStarIsCenter) {
  EXPECT_EQ(centroids(TreeTemplate::star(7)), (std::vector<int>{0}));
}

TEST(Canonical, FreeFormIdentifiesIsomorphs) {
  // Same star written with different vertex numberings.
  const TreeTemplate a = TreeTemplate::from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  const TreeTemplate b = TreeTemplate::from_edges(4, {{3, 0}, {3, 1}, {3, 2}});
  EXPECT_EQ(ahu_free(a), ahu_free(b));
  EXPECT_TRUE(isomorphic(a, b));
  EXPECT_NE(ahu_free(a), ahu_free(TreeTemplate::path(4)));
  EXPECT_FALSE(isomorphic(a, TreeTemplate::path(4)));
}

TEST(Canonical, LabelsBreakSymmetry) {
  TreeTemplate labeled = TreeTemplate::path(3);
  labeled.set_labels({0, 0, 1});
  EXPECT_NE(ahu_rooted(labeled, 0), ahu_rooted(labeled, 2));
  EXPECT_EQ(automorphisms(labeled), 1u);
  TreeTemplate symmetric = TreeTemplate::path(3);
  symmetric.set_labels({1, 0, 1});
  EXPECT_EQ(automorphisms(symmetric), 2u);
}

TEST(Canonical, KnownAutomorphismCounts) {
  EXPECT_EQ(automorphisms(TreeTemplate::path(2)), 2u);
  EXPECT_EQ(automorphisms(TreeTemplate::path(5)), 2u);
  EXPECT_EQ(automorphisms(TreeTemplate::star(5)), 24u);  // 4!
  // Double star (two centers with two leaves each): 2 * 2! * 2! = 8.
  const TreeTemplate double_star =
      TreeTemplate::from_edges(6, {{0, 1}, {0, 2}, {0, 3}, {3, 4}, {3, 5}});
  EXPECT_EQ(automorphisms(double_star), 8u);
}

class AutomorphismsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(AutomorphismsBruteForce, MatchesPermutationSearch) {
  // Exhaustive over ALL free trees of size k: the strongest possible
  // pin on the centroid-factorization logic.
  const int k = GetParam();
  for (const TreeTemplate& tree : all_free_trees(k)) {
    EXPECT_EQ(automorphisms(tree), testing::brute_force_automorphisms(tree))
        << tree.describe();
  }
}

TEST_P(AutomorphismsBruteForce, OrbitsMatchPermutationSearch) {
  const int k = GetParam();
  for (const TreeTemplate& tree : all_free_trees(k)) {
    const auto ours = vertex_orbits(tree);
    const auto brute = testing::brute_force_orbits(tree);
    // Compare partitions: same-orbit relation must be identical.
    for (int u = 0; u < k; ++u) {
      for (int v = 0; v < k; ++v) {
        EXPECT_EQ(ours[u] == ours[v], brute[u] == brute[v])
            << tree.describe() << " u=" << u << " v=" << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTreesUpTo8, AutomorphismsBruteForce,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(Canonical, RootedAutomorphismsOfStar) {
  const TreeTemplate star = TreeTemplate::star(5);
  EXPECT_EQ(rooted_automorphisms(star, 0), 24u);  // center fixed: 4!
  EXPECT_EQ(rooted_automorphisms(star, 1), 6u);   // one leaf fixed: 3!
}

TEST(Canonical, StabilizerTimesOrbitIsGroupOrder) {
  for (int k = 3; k <= 7; ++k) {
    for (const TreeTemplate& tree : all_free_trees(k)) {
      const auto orbits = vertex_orbits(tree);
      const std::uint64_t alpha = automorphisms(tree);
      for (int v = 0; v < k; ++v) {
        std::uint64_t orbit_size = 0;
        for (int u = 0; u < k; ++u) {
          if (orbits[u] == orbits[v]) ++orbit_size;
        }
        EXPECT_EQ(vertex_stabilizer(tree, v) * orbit_size, alpha);
      }
    }
  }
}

TEST(Canonical, SubtreeCanonicalKeying) {
  // In U7-2-like spider, the three length-2 legs have identical rooted
  // canonical subtree strings.
  const TreeTemplate spider = TreeTemplate::from_edges(
      7, {{0, 1}, {1, 2}, {0, 3}, {3, 4}, {0, 5}, {5, 6}});
  EXPECT_EQ(ahu_rooted_subtree(spider, {1, 2}, 1),
            ahu_rooted_subtree(spider, {3, 4}, 3));
  // A 3-path rooted at its end vs its middle are different rooted trees.
  EXPECT_NE(ahu_rooted_subtree(spider, {0, 1, 2}, 0),
            ahu_rooted_subtree(spider, {0, 1, 2}, 1));
  EXPECT_THROW(ahu_rooted_subtree(spider, {1, 2}, 0), fascia::Error);
}

}  // namespace
}  // namespace fascia
