#include "analytics/significance.hpp"

#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "graph/generators.hpp"

namespace fascia::analytics {
namespace {

TEST(Significance, StructureAndDeterminism) {
  const Graph g = largest_component(chung_lu(250, 750, 2.2, 50, 9));
  CountOptions options;
  options.sampling.iterations = 30;
  options.execution.mode = ParallelMode::kSerial;
  options.sampling.seed = 3;
  const auto a = motif_significance(g, 4, 4, options);
  EXPECT_EQ(a.k, 4);
  EXPECT_EQ(a.trees.size(), 2u);  // path-4 and star-4
  EXPECT_EQ(a.ensemble_size, 4);
  ASSERT_EQ(a.z_scores.size(), 2u);

  const auto b = motif_significance(g, 4, 4, options);
  EXPECT_EQ(a.real_counts, b.real_counts);
  EXPECT_EQ(a.z_scores, b.z_scores);
}

TEST(Significance, RandomGraphHasNoStrongMotifs) {
  // An ER graph *is* its own null model (up to degree-sequence detail):
  // z-scores should be modest.
  const Graph g = largest_component(erdos_renyi_gnm(300, 900, 5));
  CountOptions options;
  options.sampling.iterations = 60;
  options.execution.mode = ParallelMode::kSerial;
  const auto sig = motif_significance(g, 4, 6, options);
  for (double z : sig.z_scores) {
    EXPECT_LT(std::abs(z), 12.0);
  }
}

TEST(Significance, PlantedStructureDetected) {
  // Degree-preserving rewiring destroys clustering but keeps degrees:
  // a graph assembled from dense clusters shows path/star imbalance
  // versus its rewired ensemble.  Use a strongly clustered contact
  // network — its abundance of short cycles depresses tree counts
  // relative to the randomized version, giving |z| >> 0 somewhere.
  const Graph g = largest_component(contact_network(600, 12.0, 4));
  CountOptions options;
  options.sampling.iterations = 60;
  options.execution.mode = ParallelMode::kSerial;
  const auto sig = motif_significance(g, 4, 6, options);
  double max_abs_z = 0.0;
  for (double z : sig.z_scores) max_abs_z = std::max(max_abs_z, std::abs(z));
  EXPECT_GT(max_abs_z, 3.0);
}

TEST(Significance, Validation) {
  const Graph g = erdos_renyi_gnm(50, 100, 1);
  CountOptions options;
  options.sampling.iterations = 2;
  EXPECT_THROW(motif_significance(g, 4, 1, options), std::invalid_argument);
  EXPECT_THROW(motif_significance(g, 4, 4, options, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace fascia::analytics
