// Cross-cutting property tests: invariants that should hold for any
// (graph, template, seed) combination, swept over random instances.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "core/counter.hpp"
#include "core/extract.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "treelet/free_trees.hpp"
#include "util/rng.hpp"

namespace fascia {
namespace {

class RandomInstance : public ::testing::TestWithParam<int> {
 protected:
  Graph make_graph() const {
    const auto seed = static_cast<std::uint64_t>(GetParam());
    return largest_component(
        erdos_renyi_gnm(40 + GetParam() * 7, 100 + GetParam() * 20, seed));
  }
};

TEST_P(RandomInstance, PrefixOfLongerRunEqualsShorterRun) {
  // per_iteration depends only on (seed, iteration index): running 10
  // iterations must reproduce the 5-iteration run as its prefix.
  const Graph g = make_graph();
  const TreeTemplate tree = TreeTemplate::path(4);
  CountOptions options;
  options.execution.mode = ParallelMode::kSerial;
  options.sampling.seed = static_cast<std::uint64_t>(GetParam()) + 100;
  options.sampling.iterations = 5;
  const auto shorter = count_template(g, tree, options);
  options.sampling.iterations = 10;
  const auto longer = count_template(g, tree, options);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(shorter.per_iteration[i], longer.per_iteration[i]);
  }
}

TEST_P(RandomInstance, EstimatesNonNegativeAndFinite) {
  const Graph g = make_graph();
  for (const TreeTemplate& tree : all_free_trees(5)) {
    CountOptions options;
    options.sampling.iterations = 3;
    options.execution.mode = ParallelMode::kSerial;
    options.sampling.seed = static_cast<std::uint64_t>(GetParam());
    const CountResult result = count_template(g, tree, options);
    EXPECT_GE(result.estimate, 0.0);
    EXPECT_TRUE(std::isfinite(result.estimate));
    for (double value : result.per_iteration) {
      EXPECT_GE(value, 0.0);
      EXPECT_TRUE(std::isfinite(value));
    }
  }
}

TEST_P(RandomInstance, PerVertexNonNegativeAndSumConsistent) {
  const Graph g = make_graph();
  const TreeTemplate tree = TreeTemplate::star(4);
  CountOptions options;
  options.sampling.iterations = 4;
  options.execution.mode = ParallelMode::kSerial;
  options.sampling.seed = static_cast<std::uint64_t>(GetParam());
  const CountResult result = graphlet_degrees(g, tree, 0, options);
  double sum = 0.0;
  for (double value : result.vertex_counts) {
    EXPECT_GE(value, 0.0);
    sum += value;
  }
  // Star rooted at the center: orbit {0} alone, so per-vertex counts
  // sum to the occurrence estimate exactly.
  EXPECT_NEAR(sum, result.estimate, 1e-9 * (1.0 + std::abs(sum)));
}

TEST_P(RandomInstance, SampledEmbeddingsValidAcrossTreeShapes) {
  const Graph g = make_graph();
  for (const TreeTemplate& tree : all_free_trees(5)) {
    CountOptions options;
    options.sampling.seed = static_cast<std::uint64_t>(GetParam()) * 31 + 7;
    const auto embeddings = sample_embeddings(g, tree, 5, options);
    for (const auto& embedding : embeddings) {
      EXPECT_TRUE(is_valid_embedding(g, tree, embedding));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstance,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(SamplingDistribution, RoughlyUniformOverCopies) {
  // On a graph with few P3 copies, repeated sampling should touch all
  // of them and no copy should dominate outrageously.
  const Graph g = largest_component(erdos_renyi_gnm(14, 20, 9));
  const TreeTemplate tree = TreeTemplate::path(3);
  std::set<std::vector<VertexId>> seen;
  std::map<std::vector<VertexId>, int> frequency;
  for (int round = 0; round < 60; ++round) {
    CountOptions options;
    options.sampling.seed = static_cast<std::uint64_t>(round) * 977 + 13;
    for (const auto& embedding : sample_embeddings(g, tree, 4, options)) {
      auto sorted = embedding.vertices;
      std::sort(sorted.begin(), sorted.end());
      seen.insert(sorted);
      ++frequency[sorted];
    }
  }
  // Exhaustive ground truth via enumeration across several colorings.
  std::set<std::vector<VertexId>> all_copies;
  for (int seed = 0; seed < 24; ++seed) {
    CountOptions options;
    options.sampling.seed = static_cast<std::uint64_t>(seed);
    for (const auto& embedding :
         enumerate_embeddings(g, tree, 1 << 16, true, options)) {
      auto sorted = embedding.vertices;
      std::sort(sorted.begin(), sorted.end());
      all_copies.insert(sorted);
    }
  }
  ASSERT_GT(all_copies.size(), 3u);
  // Sampling reached a healthy majority of the copy universe.
  EXPECT_GT(seen.size() * 10, all_copies.size() * 6);
}

}  // namespace
}  // namespace fascia
