#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"
#include "helpers.hpp"
#include "util/error.hpp"

namespace fascia {
namespace {

using testing::complete_graph;
using testing::path_graph;
using testing::star_graph;
using testing::triangle_graph;

TEST(GraphBuilder, BasicCsrShape) {
  const Graph g = build_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(3), 1);
}

TEST(GraphBuilder, DropsSelfLoops) {
  const Graph g = build_graph(3, {{0, 0}, {0, 1}, {2, 2}});
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(GraphBuilder, MergesDuplicatesBothOrientations) {
  const Graph g = build_graph(3, {{0, 1}, {1, 0}, {0, 1}, {2, 1}});
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(GraphBuilder, AdjacencySortedAndSymmetric) {
  const Graph g = build_graph(5, {{4, 0}, {2, 0}, {3, 0}, {1, 0}, {4, 2}});
  const auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      EXPECT_TRUE(g.has_edge(u, v));
      EXPECT_TRUE(g.has_edge(v, u));
    }
  }
}

TEST(GraphBuilder, OutOfRangeEndpointThrows) {
  EXPECT_THROW(build_graph(2, {{0, 2}}), fascia::Error);
  EXPECT_THROW(build_graph(2, {{-1, 0}}), fascia::Error);
}

TEST(GraphBuilder, DerivesSizeFromEdges) {
  const Graph g = build_graph({{0, 5}, {2, 3}});
  EXPECT_EQ(g.num_vertices(), 6);
}

TEST(GraphBuilder, EmptyGraph) {
  const Graph g = build_graph(0, {});
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 0.0);
}

TEST(Graph, HasEdge) {
  const Graph g = triangle_graph();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(0, 5));
  EXPECT_FALSE(g.has_edge(-1, 0));
}

TEST(Graph, DegreeStatistics) {
  const Graph g = star_graph(6);
  EXPECT_EQ(g.max_degree(), 5);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 10.0 / 6.0);
}

TEST(Graph, EdgeListRoundTrip) {
  const EdgeList original = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  const Graph g = build_graph(4, original);
  EdgeList extracted = edge_list(g);
  std::sort(extracted.begin(), extracted.end());
  EdgeList expected = original;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(extracted, expected);
}

TEST(GraphLabels, SetAndQuery) {
  Graph g = path_graph(3);
  g.set_labels({0, 1, 1}, 2);
  EXPECT_TRUE(g.has_labels());
  EXPECT_EQ(g.num_label_values(), 2);
  EXPECT_EQ(g.label(0), 0);
  EXPECT_EQ(g.label(2), 1);
  g.clear_labels();
  EXPECT_FALSE(g.has_labels());
}

TEST(GraphLabels, ValidationErrors) {
  Graph g = path_graph(3);
  EXPECT_THROW(g.set_labels({0, 1}, 2), std::invalid_argument);     // size
  EXPECT_THROW(g.set_labels({0, 1, 2}, 2), std::invalid_argument);  // range
  EXPECT_THROW(g.set_labels({0, 0, 0}, 0), std::invalid_argument);  // values
}

TEST(Graph, InducedSubgraphRelabels) {
  const Graph g = complete_graph(5);
  std::vector<VertexId> map;
  const Graph sub = induced_subgraph(g, {4, 2, 0}, &map);
  EXPECT_EQ(sub.num_vertices(), 3);
  EXPECT_EQ(sub.num_edges(), 3);  // K3
  EXPECT_EQ(map[4], 0);
  EXPECT_EQ(map[2], 1);
  EXPECT_EQ(map[0], 2);
  EXPECT_EQ(map[1], -1);
}

TEST(Graph, InducedSubgraphCarriesLabels) {
  Graph g = path_graph(4);
  g.set_labels({3, 2, 1, 0}, 4);
  const Graph sub = induced_subgraph(g, {3, 1});
  ASSERT_TRUE(sub.has_labels());
  EXPECT_EQ(sub.label(0), 0);
  EXPECT_EQ(sub.label(1), 2);
}

TEST(Graph, InducedSubgraphRejectsDuplicates) {
  const Graph g = path_graph(4);
  EXPECT_THROW(induced_subgraph(g, {1, 1}), fascia::Error);
  EXPECT_THROW(induced_subgraph(g, {9}), fascia::Error);
}

TEST(Graph, BytesAccountsArrays) {
  const Graph g = path_graph(10);
  EXPECT_GT(g.bytes(), 0u);
}

TEST(Graph, InvalidCsrRejected) {
  EXPECT_THROW(Graph({}, {}), std::invalid_argument);
  EXPECT_THROW(Graph({0, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(Graph({0, 2, 1}, {1, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace fascia
