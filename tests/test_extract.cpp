#include "core/extract.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/counter.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/labels.hpp"
#include "helpers.hpp"
#include "treelet/catalog.hpp"

namespace fascia {
namespace {

Graph test_graph() {
  static const Graph g = largest_component(erdos_renyi_gnm(50, 130, 23));
  return g;
}

TEST(Extract, SampledEmbeddingsAreValid) {
  const Graph g = test_graph();
  for (const char* name : {"U3-1", "U5-1", "U5-2", "U7-2"}) {
    const TreeTemplate& tree = catalog_entry(name).tree;
    const auto embeddings = sample_embeddings(g, tree, 25);
    EXPECT_GT(embeddings.size(), 0u) << name;
    for (const auto& embedding : embeddings) {
      EXPECT_TRUE(is_valid_embedding(g, tree, embedding)) << name;
    }
  }
}

TEST(Extract, SamplingDeterministicInSeed) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  CountOptions options;
  options.sampling.seed = 77;
  const auto a = sample_embeddings(g, tree, 10, options);
  const auto b = sample_embeddings(g, tree, 10, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].vertices, b[i].vertices);
  }
}

TEST(Extract, EnumerationMatchesColorfulOccurrenceCount) {
  // For one fixed coloring, every colorful copy (vertex set + edges)
  // is discovered exactly alpha times as a map; dedup reduces to
  // occurrence counts.
  const Graph g = test_graph();
  const TreeTemplate tree = TreeTemplate::path(4);
  CountOptions options;
  options.sampling.seed = 9;
  const auto with_dedup =
      enumerate_embeddings(g, tree, 1u << 20, /*dedup_sets=*/true, options);
  const auto without_dedup =
      enumerate_embeddings(g, tree, 1u << 20, /*dedup_sets=*/false, options);
  // Path has alpha = 2: every copy appears exactly twice as a map.
  EXPECT_EQ(without_dedup.size(), 2 * with_dedup.size());
  for (const auto& embedding : without_dedup) {
    EXPECT_TRUE(is_valid_embedding(g, tree, embedding));
  }
}

TEST(Extract, EnumerationRespectsLimit) {
  const Graph g = test_graph();
  const TreeTemplate tree = TreeTemplate::path(3);
  const auto embeddings = enumerate_embeddings(g, tree, 7);
  EXPECT_LE(embeddings.size(), 7u);
}

TEST(Extract, EnumeratedCopiesAreDistinct) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-1").tree;
  const auto embeddings = enumerate_embeddings(g, tree, 500, true);
  std::set<std::vector<std::pair<VertexId, VertexId>>> copies;
  for (const auto& embedding : embeddings) {
    std::vector<std::pair<VertexId, VertexId>> edges;
    for (auto [a, b] : tree.edges()) {
      const VertexId u = embedding.vertices[static_cast<std::size_t>(a)];
      const VertexId v = embedding.vertices[static_cast<std::size_t>(b)];
      edges.emplace_back(std::min(u, v), std::max(u, v));
    }
    std::sort(edges.begin(), edges.end());
    EXPECT_TRUE(copies.insert(edges).second);
  }
}

TEST(Extract, LabeledEmbeddingsRespectLabels) {
  Graph g = test_graph();
  assign_random_labels(g, 2, 4);
  TreeTemplate tree = TreeTemplate::path(3);
  tree.set_labels({0, 1, 0});
  const auto embeddings = sample_embeddings(g, tree, 10);
  for (const auto& embedding : embeddings) {
    EXPECT_TRUE(is_valid_embedding(g, tree, embedding));
  }
}

TEST(Extract, ValidatorCatchesBadEmbeddings) {
  const Graph g = testing::path_graph(4);
  const TreeTemplate tree = TreeTemplate::path(3);
  EXPECT_TRUE(is_valid_embedding(g, tree, {{0, 1, 2}}));
  EXPECT_FALSE(is_valid_embedding(g, tree, {{0, 1}}));        // wrong size
  EXPECT_FALSE(is_valid_embedding(g, tree, {{0, 1, 1}}));     // repeat
  EXPECT_FALSE(is_valid_embedding(g, tree, {{0, 2, 3}}));     // missing edge
  EXPECT_FALSE(is_valid_embedding(g, tree, {{0, 1, 9}}));     // out of range
}

TEST(Extract, NoEmbeddingsInTooSmallGraph) {
  const Graph g = testing::path_graph(2);
  const TreeTemplate tree = TreeTemplate::path(5);
  EXPECT_TRUE(sample_embeddings(g, tree, 5).empty());
  EXPECT_TRUE(enumerate_embeddings(g, tree, 5).empty());
}

}  // namespace
}  // namespace fascia
