#include "util/table_printer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fascia {
namespace {

TEST(TablePrinter, RendersHeaderAndRows) {
  TablePrinter table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinter, RowWidthMismatchThrows) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TablePrinter, ColumnsAligned) {
  TablePrinter table({"x", "longheader"});
  table.add_row({"aaaaaaa", "1"});
  const std::string out = table.str();
  // Every line has the same position for the second column's start.
  const auto first_newline = out.find('\n');
  const std::string header = out.substr(0, first_newline);
  EXPECT_GE(header.size(), std::string("aaaaaaa  1").size() - 1);
}

TEST(TablePrinter, NumFormatting) {
  EXPECT_EQ(TablePrinter::num(1.5, 2), "1.50");
  EXPECT_EQ(TablePrinter::num(std::size_t{42}), "42");
  EXPECT_EQ(TablePrinter::num(static_cast<long long>(-7)), "-7");
}

TEST(TablePrinter, SciFormatting) {
  EXPECT_EQ(TablePrinter::sci(12345.0, 2), "1.23e+04");
}

TEST(TablePrinter, BytesHumanUnits) {
  EXPECT_EQ(TablePrinter::bytes(512), "512.00 B");
  EXPECT_EQ(TablePrinter::bytes(2048), "2.00 KiB");
  EXPECT_EQ(TablePrinter::bytes(std::size_t{3} * 1024 * 1024), "3.00 MiB");
  EXPECT_EQ(TablePrinter::bytes(std::size_t{5} * 1024 * 1024 * 1024),
            "5.00 GiB");
}

}  // namespace
}  // namespace fascia
