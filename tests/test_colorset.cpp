#include "comb/colorset.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

namespace fascia {
namespace {

TEST(Colorset, KnownIndices) {
  // k=4, h=2 in colex order.
  EXPECT_EQ(colorset_index(std::vector<int>{0, 1}), 0u);
  EXPECT_EQ(colorset_index(std::vector<int>{0, 2}), 1u);
  EXPECT_EQ(colorset_index(std::vector<int>{1, 2}), 2u);
  EXPECT_EQ(colorset_index(std::vector<int>{0, 3}), 3u);
  EXPECT_EQ(colorset_index(std::vector<int>{1, 3}), 4u);
  EXPECT_EQ(colorset_index(std::vector<int>{2, 3}), 5u);
}

TEST(Colorset, SingletonIndexIsColor) {
  for (int c = 0; c < 12; ++c) {
    EXPECT_EQ(colorset_index(std::vector<int>{c}),
              static_cast<ColorsetIndex>(c));
  }
}

struct KhParam {
  int k;
  int h;
};

class ColorsetRoundTrip : public ::testing::TestWithParam<KhParam> {};

TEST_P(ColorsetRoundTrip, EncodeDecodeBijective) {
  const auto [k, h] = GetParam();
  const auto count = num_colorsets(k, h);
  std::set<std::vector<int>> seen;
  for (ColorsetIndex index = 0; index < count; ++index) {
    const auto colors = colorset_colors(index, h);
    ASSERT_EQ(static_cast<int>(colors.size()), h);
    for (std::size_t i = 0; i + 1 < colors.size(); ++i) {
      ASSERT_LT(colors[i], colors[i + 1]);
    }
    ASSERT_LT(colors.back(), k);
    ASSERT_GE(colors.front(), 0);
    EXPECT_EQ(colorset_index(colors), index);
    EXPECT_TRUE(seen.insert(colors).second);
  }
  EXPECT_EQ(seen.size(), count);
}

TEST_P(ColorsetRoundTrip, ColexIterationMatchesIndexOrder) {
  const auto [k, h] = GetParam();
  std::vector<int> colors(static_cast<std::size_t>(h));
  std::iota(colors.begin(), colors.end(), 0);
  ColorsetIndex expected = 0;
  do {
    EXPECT_EQ(colorset_index(colors), expected);
    ++expected;
  } while (next_colorset(colors, k));
  EXPECT_EQ(expected, num_colorsets(k, h));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ColorsetRoundTrip,
    ::testing::Values(KhParam{3, 1}, KhParam{3, 3}, KhParam{5, 2},
                      KhParam{7, 4}, KhParam{10, 5}, KhParam{12, 6},
                      KhParam{12, 12}, KhParam{16, 3}));

TEST(Colorset, ContainsIsMembership) {
  const std::vector<int> colors = {1, 3, 4};
  const ColorsetIndex index = colorset_index(colors);
  for (int c = 0; c < 6; ++c) {
    EXPECT_EQ(colorset_contains(index, 3, c),
              c == 1 || c == 3 || c == 4);
  }
}

TEST(Colorset, NumColorsets) {
  EXPECT_EQ(num_colorsets(12, 6), 924u);
  EXPECT_EQ(num_colorsets(5, 5), 1u);
  EXPECT_EQ(num_colorsets(5, 0), 1u);
}

}  // namespace
}  // namespace fascia
