#include "util/mem_tracker.hpp"

#include <gtest/gtest.h>

namespace fascia {
namespace {

class MemTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override { MemTracker::reset_all(); }
  void TearDown() override { MemTracker::reset_all(); }
};

TEST_F(MemTrackerTest, AddSubTracksCurrent) {
  MemTracker::add(100);
  EXPECT_EQ(MemTracker::current(), 100u);
  MemTracker::add(50);
  EXPECT_EQ(MemTracker::current(), 150u);
  MemTracker::sub(100);
  EXPECT_EQ(MemTracker::current(), 50u);
}

TEST_F(MemTrackerTest, PeakIsHighWaterMark) {
  MemTracker::add(100);
  MemTracker::sub(100);
  MemTracker::add(40);
  EXPECT_EQ(MemTracker::peak(), 100u);
  EXPECT_EQ(MemTracker::current(), 40u);
}

TEST_F(MemTrackerTest, ResetPeakDropsToCurrent) {
  MemTracker::add(100);
  MemTracker::sub(60);
  MemTracker::reset_peak();
  EXPECT_EQ(MemTracker::peak(), 40u);
  MemTracker::add(10);
  EXPECT_EQ(MemTracker::peak(), 50u);
}

TEST_F(MemTrackerTest, PeakMemScopeMeasuresWindow) {
  MemTracker::add(1000);
  std::size_t measured = 0;
  {
    PeakMemScope scope(measured);
    MemTracker::add(500);
    MemTracker::sub(500);
  }
  EXPECT_EQ(measured, 1500u);
  MemTracker::sub(1000);
}

TEST_F(MemTrackerTest, CurrentNeverNegative) {
  MemTracker::sub(10);  // underflow clamps to 0 at read time
  EXPECT_EQ(MemTracker::current(), 0u);
}

}  // namespace
}  // namespace fascia
