#include "core/counter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "dp/table_compact.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/labels.hpp"
#include "helpers.hpp"
#include "treelet/canonical.hpp"
#include "treelet/catalog.hpp"
#include "treelet/free_trees.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fascia {
namespace {

Graph test_graph() {
  static const Graph g = largest_component(erdos_renyi_gnm(40, 90, 11));
  return g;
}

// ---- ground truth: per-coloring DP totals equal brute-force colorful
// injective map counts, for every tree, root, strategy, and table.
class PerColoringExactness : public ::testing::TestWithParam<int> {};

TEST_P(PerColoringExactness, DpMatchesBruteForce) {
  const int k = GetParam();
  const Graph g = test_graph();
  Xoshiro256 rng(2024 + static_cast<std::uint64_t>(k));
  for (const TreeTemplate& tree : all_free_trees(k)) {
    ColorArray colors(static_cast<std::size_t>(g.num_vertices()));
    for (auto& c : colors) {
      c = static_cast<std::uint8_t>(rng.bounded(static_cast<std::uint32_t>(k)));
    }
    const double brute = testing::brute_force_maps(
        g, tree, std::vector<std::uint8_t>(colors.begin(), colors.end()));
    for (auto strategy : {PartitionStrategy::kOneAtATime,
                          PartitionStrategy::kBalanced}) {
      for (int root : {-1, 0, tree.size() - 1}) {
        const auto part = partition_template(tree, strategy, true, root);
        DpEngine<CompactTable> engine(g, tree, part, k);
        const double raw = engine.run(colors, /*parallel_inner=*/false);
        ASSERT_NEAR(raw, brute, 1e-6 * (1.0 + brute))
            << tree.describe() << " root=" << root;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, PerColoringExactness,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

// ---- the estimator is unbiased: many iterations converge to exact.
class Convergence : public ::testing::TestWithParam<const char*> {};

TEST_P(Convergence, EstimateApproachesExactCount) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry(GetParam()).tree;
  const double exact = testing::brute_force_maps(g, tree) /
                       static_cast<double>(automorphisms(tree));
  CountOptions options;
  options.sampling.iterations = 1500;
  options.execution.mode = ParallelMode::kSerial;
  options.sampling.seed = 7;
  const CountResult result = count_template(g, tree, options);
  EXPECT_NEAR(result.estimate, exact, exact * 0.08) << "exact=" << exact;
}

INSTANTIATE_TEST_SUITE_P(Templates, Convergence,
                         ::testing::Values("U3-1", "U5-1", "U5-2", "U7-1"));

// ---- determinism: same seed => identical per-iteration estimates,
// regardless of table kind, strategy, sharing, or parallel mode.
TEST(Counter, ResultsIndependentOfConfiguration) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  CountOptions base;
  base.sampling.iterations = 4;
  base.execution.mode = ParallelMode::kSerial;
  base.sampling.seed = 31;
  const CountResult reference = count_template(g, tree, base);

  std::vector<CountOptions> variants;
  for (TableKind table :
       {TableKind::kNaive, TableKind::kCompact, TableKind::kHash,
        TableKind::kSuccinct}) {
    for (auto strategy : {PartitionStrategy::kOneAtATime,
                          PartitionStrategy::kBalanced}) {
      for (bool share : {true, false}) {
        for (auto mode : {ParallelMode::kSerial, ParallelMode::kInnerLoop,
                          ParallelMode::kOuterLoop}) {
          CountOptions options = base;
          options.execution.table = table;
          options.execution.partition = strategy;
          options.execution.share_tables = share;
          options.execution.mode = mode;
          variants.push_back(options);
        }
      }
    }
  }
  for (const auto& options : variants) {
    const CountResult result = count_template(g, tree, options);
    ASSERT_EQ(result.per_iteration.size(), reference.per_iteration.size());
    for (std::size_t i = 0; i < result.per_iteration.size(); ++i) {
      EXPECT_NEAR(result.per_iteration[i], reference.per_iteration[i],
                  1e-9 * (1.0 + std::abs(reference.per_iteration[i])))
          << "table=" << table_kind_name(options.execution.table)
          << " mode=" << parallel_mode_name(options.execution.mode);
    }
  }
}

// ---- kernel bit-identity: the vectorized kernels (frontiers, SoA
// split layouts, borrowed rows — DESIGN.md §8) must reproduce the seed
// reference kernels' per-iteration estimates bit-for-bit.  DP values
// are exact integer counts below 2^53, so reassociating or reordering
// the sums is not allowed to change a single bit.
TEST(Counter, VectorizedKernelsBitIdenticalToReference) {
  Graph er = test_graph();
  const Graph cl = largest_component(chung_lu(300, 900, 2.3, 60, 5));
  Graph cl_labeled = cl;
  assign_random_labels(cl_labeled, 4, 17);

  std::vector<TreeTemplate> trees;
  for (const char* name : {"U3-1", "U3-2", "U5-1", "U5-2", "U7-1", "U7-2"}) {
    trees.push_back(catalog_entry(name).tree);
  }
  const auto eights = all_free_trees(8);
  trees.push_back(eights.front());
  trees.push_back(eights[eights.size() / 2]);
  trees.push_back(eights.back());

  const auto check_matrix = [](const Graph& g,
                               const std::vector<TreeTemplate>& shapes,
                               const char* tag) {
    for (const TreeTemplate& tree : shapes) {
      for (TableKind table :
           {TableKind::kNaive, TableKind::kCompact, TableKind::kHash,
            TableKind::kSuccinct}) {
        for (auto strategy : {PartitionStrategy::kOneAtATime,
                              PartitionStrategy::kBalanced}) {
          for (auto mode :
               {ParallelMode::kSerial, ParallelMode::kInnerLoop}) {
            CountOptions options;
            options.sampling.iterations = 3;
            options.sampling.seed = 97;
            options.execution.mode = mode;
            options.execution.table = table;
            options.execution.partition = strategy;
            CountOptions ref_options = options;
            ref_options.execution.reference_kernels = true;
            const CountResult fast = count_template(g, tree, options);
            const CountResult ref = count_template(g, tree, ref_options);
            ASSERT_EQ(ref.per_iteration.size(), fast.per_iteration.size());
            for (std::size_t i = 0; i < ref.per_iteration.size(); ++i) {
              // Exact ==, not NEAR: this is a bit-identity contract.
              EXPECT_EQ(ref.per_iteration[i], fast.per_iteration[i])
                  << tag << " " << tree.describe()
                  << " table=" << table_kind_name(table)
                  << " mode=" << parallel_mode_name(mode) << " iter=" << i;
            }
          }
        }
      }
    }
  };
  check_matrix(er, trees, "er");
  check_matrix(cl, trees, "chung-lu");
  // Labeled graph + labeled templates: the vectorized leaf stages
  // iterate per-label frontiers instead of full-n scans.
  TreeTemplate labeled_path = TreeTemplate::path(5);
  labeled_path.set_labels({0, 1, 2, 1, 0});
  TreeTemplate labeled_star = TreeTemplate::star(6);
  labeled_star.set_labels({0, 1, 1, 2, 3, 1});
  check_matrix(cl_labeled, {labeled_path, labeled_star},
               "chung-lu-labeled");
}

// ---- SpMM kernel family (DESIGN.md §13): same bit-identity contract.
// Eligible stages export the passive table as a column-blocked dense
// multivector and run a masked SpMM over the frontier; ineligible
// stages fall back to the frontier kernels per stage.  Either way
// every per-iteration estimate must reproduce the reference kernels
// bit for bit — DP values are exact integers below 2^53 and the SpMM
// path accumulates per column in the same neighbor order.
TEST(Counter, SpmmKernelFamilyBitIdenticalToReference) {
  const Graph cl = largest_component(chung_lu(300, 900, 2.3, 60, 5));
  Graph cl_labeled = cl;
  assign_random_labels(cl_labeled, 4, 17);

  std::vector<TreeTemplate> trees;
  for (const char* name : {"U5-2", "U7-1", "U7-2"}) {
    trees.push_back(catalog_entry(name).tree);
  }
  trees.push_back(all_free_trees(8).back());

  const auto check_matrix = [](const Graph& g,
                               const std::vector<TreeTemplate>& shapes,
                               const char* tag) {
    for (const TreeTemplate& tree : shapes) {
      for (TableKind table :
           {TableKind::kNaive, TableKind::kCompact, TableKind::kHash,
            TableKind::kSuccinct}) {
        for (auto strategy : {PartitionStrategy::kOneAtATime,
                              PartitionStrategy::kBalanced}) {
          for (auto mode :
               {ParallelMode::kSerial, ParallelMode::kInnerLoop}) {
            CountOptions options;
            options.sampling.iterations = 3;
            options.sampling.seed = 97;
            options.execution.mode = mode;
            options.execution.table = table;
            options.execution.partition = strategy;
            options.execution.kernel_family = KernelFamily::kSpmm;
            CountOptions ref_options = options;
            ref_options.execution.kernel_family = KernelFamily::kFrontier;
            ref_options.execution.reference_kernels = true;
            const CountResult spmm = count_template(g, tree, options);
            const CountResult ref = count_template(g, tree, ref_options);
            ASSERT_EQ(ref.per_iteration.size(), spmm.per_iteration.size());
            for (std::size_t i = 0; i < ref.per_iteration.size(); ++i) {
              // Exact ==, not NEAR: this is a bit-identity contract.
              EXPECT_EQ(ref.per_iteration[i], spmm.per_iteration[i])
                  << tag << " " << tree.describe()
                  << " table=" << table_kind_name(table)
                  << " mode=" << parallel_mode_name(mode) << " iter=" << i;
            }
          }
        }
      }
    }
  };
  check_matrix(cl, trees, "chung-lu");
  // Labeled templates: SpMM stage frontiers are per-label lists and
  // the passive export skips label-filtered rows.
  TreeTemplate labeled_path = TreeTemplate::path(5);
  labeled_path.set_labels({0, 1, 2, 1, 0});
  TreeTemplate labeled_star = TreeTemplate::star(6);
  labeled_star.set_labels({0, 1, 1, 2, 3, 1});
  check_matrix(cl_labeled, {labeled_path, labeled_star},
               "chung-lu-labeled");
}

TEST(Counter, SpmmRejectedUnderReferenceKernels) {
  // The reference path predates frontiers and has no SpMM form;
  // validate() refuses the combination instead of silently ignoring
  // one of the two knobs.
  CountOptions options;
  options.execution.reference_kernels = true;
  options.execution.kernel_family = KernelFamily::kSpmm;
  EXPECT_THROW(count_template(test_graph(), TreeTemplate::path(3), options),
               Error);
}

TEST(Counter, ExtraColorsStillUnbiased) {
  const Graph g = test_graph();
  const TreeTemplate tree = TreeTemplate::path(4);
  const double exact = testing::brute_force_maps(g, tree) / 2.0;
  CountOptions options;
  options.sampling.iterations = 1200;
  options.sampling.num_colors = 6;  // k > template size
  options.execution.mode = ParallelMode::kSerial;
  const CountResult result = count_template(g, tree, options);
  EXPECT_NEAR(result.estimate, exact, exact * 0.08);
  // More colors -> higher colorful probability.
  EXPECT_GT(result.colorful_probability, colorful_probability(4, 4));
}

TEST(Counter, SingleVertexAndEdgeTemplates) {
  const Graph g = test_graph();
  CountOptions options;
  options.execution.mode = ParallelMode::kSerial;
  const CountResult single =
      count_template(g, TreeTemplate::from_edges(1, {}), options);
  EXPECT_DOUBLE_EQ(single.estimate, static_cast<double>(g.num_vertices()));

  options.sampling.iterations = 400;
  const CountResult edge =
      count_template(g, TreeTemplate::path(2), options);
  EXPECT_NEAR(edge.estimate, static_cast<double>(g.num_edges()),
              static_cast<double>(g.num_edges()) * 0.05);
}

TEST(Counter, LabeledCountsMatchLabeledBruteForce) {
  Graph g = test_graph();
  assign_random_labels(g, 3, 5);
  TreeTemplate tree = TreeTemplate::path(3);
  tree.set_labels({0, 1, 0});
  CountOptions options;
  options.sampling.iterations = 2500;
  options.execution.mode = ParallelMode::kSerial;
  const CountResult result = count_template(g, tree, options);
  const double exact = testing::brute_force_maps(g, tree) /
                       static_cast<double>(automorphisms(tree));
  ASSERT_GT(exact, 0.0);
  EXPECT_NEAR(result.estimate, exact, exact * 0.15);
}

TEST(Counter, LabeledCountsAreSmallerThanUnlabeled) {
  Graph g = test_graph();
  assign_random_labels(g, 8, 9);
  TreeTemplate labeled = TreeTemplate::path(3);
  labeled.set_labels({1, 2, 3});
  CountOptions options;
  options.sampling.iterations = 50;
  options.execution.mode = ParallelMode::kSerial;
  const CountResult with_labels = count_template(g, labeled, options);
  g.clear_labels();
  const CountResult without =
      count_template(g, TreeTemplate::path(3), options);
  EXPECT_LT(with_labels.estimate, without.estimate);
}

TEST(Counter, PerVertexCountsMatchExact) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  const int orbit = u52_central_vertex();
  CountOptions options;
  options.sampling.iterations = 2500;
  options.execution.mode = ParallelMode::kSerial;
  options.sampling.seed = 3;
  const CountResult result = graphlet_degrees(g, tree, orbit, options);
  ASSERT_EQ(result.vertex_counts.size(),
            static_cast<std::size_t>(g.num_vertices()));

  // Exact per-vertex graphlet degrees by brute force on a few vertices.
  // Σ_v gd(v) = occurrences * |orbit(root)| is checked in test_exact;
  // here we spot-check convergence on the highest-degree vertex.
  VertexId hub = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (g.degree(v) > g.degree(hub)) hub = v;
  }
  // Estimated total from per-vertex sums: Σ gd / orbit_size == estimate.
  double per_vertex_sum = 0.0;
  for (double value : result.vertex_counts) per_vertex_sum += value;
  const auto orbits = vertex_orbits(tree);
  int orbit_size = 0;
  for (int v = 0; v < tree.size(); ++v) {
    orbit_size += (orbits[v] == orbits[orbit]);
  }
  EXPECT_NEAR(per_vertex_sum / orbit_size, result.estimate,
              std::abs(result.estimate) * 1e-6);
}

TEST(Counter, RunningEstimatesArePrefixMeans) {
  const Graph g = test_graph();
  CountOptions options;
  options.sampling.iterations = 5;
  options.execution.mode = ParallelMode::kSerial;
  const CountResult result =
      count_template(g, TreeTemplate::path(3), options);
  const auto running = result.running_estimates();
  ASSERT_EQ(running.size(), 5u);
  EXPECT_DOUBLE_EQ(running[0], result.per_iteration[0]);
  EXPECT_NEAR(running[4], result.estimate, 1e-12);
}

TEST(Counter, OptionValidation) {
  const Graph g = test_graph();
  const TreeTemplate tree = TreeTemplate::path(4);
  CountOptions options;

  options.sampling.iterations = 0;
  EXPECT_THROW(count_template(g, tree, options), std::invalid_argument);
  options.sampling.iterations = 1;

  options.sampling.num_colors = 3;  // < template size
  EXPECT_THROW(count_template(g, tree, options), std::invalid_argument);
  options.sampling.num_colors = 0;

  options.root = 9;
  EXPECT_THROW(count_template(g, tree, options), std::invalid_argument);
  options.root = -1;

  // Labels on exactly one side are inconsistent.
  TreeTemplate labeled = tree;
  labeled.set_labels({0, 0, 0, 0});
  EXPECT_THROW(count_template(g, labeled, options), std::invalid_argument);
}

TEST(Counter, InstrumentationFieldsPopulated) {
  const Graph g = test_graph();
  CountOptions options;
  options.sampling.iterations = 2;
  options.execution.mode = ParallelMode::kSerial;
  const CountResult result =
      count_template(g, catalog_entry("U7-2").tree, options);
  EXPECT_EQ(result.automorphisms, 6u);
  EXPECT_GT(result.colorful_probability, 0.0);
  EXPECT_LT(result.colorful_probability, 1.0);
  EXPECT_GT(result.dp_cost, 0.0);
  EXPECT_GE(result.max_live_tables, 2);
  EXPECT_GT(result.num_subtemplates, 2);
  EXPECT_GT(result.peak_table_bytes, 0u);
  EXPECT_EQ(result.seconds_per_iteration.size(), 2u);
  EXPECT_GE(result.seconds_total, 0.0);
}

TEST(Counter, OuterModePeakMemoryAtLeastSerial) {
  // §III-E: outer-loop parallel tables are per-thread, so memory can
  // only grow with thread count (equal when 1 thread).
  const Graph g = test_graph();
  CountOptions options;
  options.sampling.iterations = 4;
  options.execution.mode = ParallelMode::kSerial;
  const auto serial = count_template(g, TreeTemplate::path(5), options);
  options.execution.mode = ParallelMode::kOuterLoop;
  const auto outer = count_template(g, TreeTemplate::path(5), options);
  EXPECT_GE(outer.peak_table_bytes + 1024, serial.peak_table_bytes);
}

}  // namespace
}  // namespace fascia
