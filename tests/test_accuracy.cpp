#include "core/accuracy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/counter.hpp"
#include "exact/backtrack.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "treelet/catalog.hpp"

namespace fascia {
namespace {

Graph test_graph() {
  static const Graph g = largest_component(erdos_renyi_gnm(60, 160, 71));
  return g;
}

TEST(Accuracy, TheoreticalIterationsFormula) {
  // e^k * ln(1/delta) / eps^2.
  EXPECT_NEAR(theoretical_iterations(5, 0.1, 0.05),
              std::exp(5.0) * std::log(20.0) / 0.01, 1e-6);
  // Tighter epsilon or delta -> more iterations.
  EXPECT_GT(theoretical_iterations(5, 0.05, 0.05),
            theoretical_iterations(5, 0.1, 0.05));
  EXPECT_GT(theoretical_iterations(5, 0.1, 0.01),
            theoretical_iterations(5, 0.1, 0.05));
  EXPECT_GT(theoretical_iterations(7, 0.1, 0.05),
            theoretical_iterations(5, 0.1, 0.05));
}

TEST(Accuracy, TheoreticalIterationsValidation) {
  EXPECT_THROW(theoretical_iterations(5, 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(theoretical_iterations(5, 0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(theoretical_iterations(5, 0.1, 1.0), std::invalid_argument);
}

TEST(Accuracy, PracticalIterationsFarBelowTheoretical) {
  // The paper's §III-A claim, made concrete: 3 iterations reach ~1 %
  // error on a graph where the bound demands tens of thousands.
  const Graph g = test_graph();
  const TreeTemplate tree = TreeTemplate::path(3);
  const double exact = testing::brute_force_maps(g, tree) / 2.0;
  CountOptions options;
  options.sampling.iterations = 25;
  options.execution.mode = ParallelMode::kSerial;
  const CountResult result = count_template(g, tree, options);
  const double error =
      std::abs(result.estimate - exact) / exact;
  EXPECT_LT(error, 0.1);
  EXPECT_GT(theoretical_iterations(3, 0.1, 0.05), 1000.0);
}

TEST(Accuracy, StderrShrinksWithIterations) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  CountOptions options;
  options.execution.mode = ParallelMode::kSerial;
  options.sampling.iterations = 20;
  const double few = estimate_relative_stderr(
      count_template(g, tree, options));
  options.sampling.iterations = 320;
  const double many = estimate_relative_stderr(
      count_template(g, tree, options));
  EXPECT_LT(many, few);
  // ~sqrt(16) = 4x reduction expected; allow slack for sampling noise.
  EXPECT_LT(many, few / 2.0);
}

TEST(Accuracy, StderrDegenerateCases) {
  CountResult result;
  EXPECT_DOUBLE_EQ(estimate_stderr(result), 0.0);
  result.per_iteration = {5.0};
  result.estimate = 5.0;
  EXPECT_DOUBLE_EQ(estimate_stderr(result), 0.0);
  result.per_iteration = {0.0, 0.0};
  result.estimate = 0.0;
  EXPECT_DOUBLE_EQ(estimate_relative_stderr(result), 0.0);
}

TEST(Accuracy, AdaptiveStopsEarlyOnEasyInstances) {
  const Graph g = test_graph();
  const TreeTemplate tree = TreeTemplate::path(3);
  CountOptions options;
  options.execution.mode = ParallelMode::kSerial;
  const AdaptiveResult adaptive =
      adaptive_count(g, tree, /*target=*/0.05, /*max=*/2000, options,
                     /*batch=*/8);
  EXPECT_TRUE(adaptive.converged);
  EXPECT_LT(adaptive.iterations_used, 2000);
  EXPECT_LE(adaptive.relative_stderr, 0.05);
  EXPECT_EQ(static_cast<int>(adaptive.count.per_iteration.size()),
            adaptive.iterations_used);

  // And the answer is right.
  const double exact = testing::brute_force_maps(g, tree) / 2.0;
  EXPECT_NEAR(adaptive.count.estimate, exact, exact * 0.2);
}

TEST(Accuracy, AdaptiveHitsCapOnImpossibleTargets) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-2").tree;
  CountOptions options;
  options.execution.mode = ParallelMode::kSerial;
  const AdaptiveResult adaptive =
      adaptive_count(g, tree, /*target=*/1e-9, /*max=*/20, options, 8);
  EXPECT_FALSE(adaptive.converged);
  EXPECT_EQ(adaptive.iterations_used, 20);
}

TEST(Accuracy, AdaptiveDeterministicInSeed) {
  const Graph g = test_graph();
  const TreeTemplate& tree = catalog_entry("U5-1").tree;
  CountOptions options;
  options.execution.mode = ParallelMode::kSerial;
  options.sampling.seed = 5;
  const auto a = adaptive_count(g, tree, 0.1, 200, options, 16);
  const auto b = adaptive_count(g, tree, 0.1, 200, options, 16);
  EXPECT_EQ(a.iterations_used, b.iterations_used);
  EXPECT_EQ(a.count.per_iteration, b.count.per_iteration);
}

TEST(Accuracy, AdaptiveValidation) {
  const Graph g = test_graph();
  const TreeTemplate tree = TreeTemplate::path(3);
  EXPECT_THROW(adaptive_count(g, tree, 0.0, 100), std::invalid_argument);
  EXPECT_THROW(adaptive_count(g, tree, 0.1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fascia
