#include "comb/binomial.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fascia {
namespace {

TEST(Binomial, KnownValues) {
  EXPECT_EQ(choose(0, 0), 1u);
  EXPECT_EQ(choose(5, 0), 1u);
  EXPECT_EQ(choose(5, 5), 1u);
  EXPECT_EQ(choose(5, 2), 10u);
  EXPECT_EQ(choose(12, 6), 924u);
  EXPECT_EQ(choose(34, 17), 2333606220u);
}

TEST(Binomial, OutOfRangeIsZero) {
  EXPECT_EQ(choose(3, 4), 0u);
  EXPECT_EQ(choose(-1, 0), 0u);
  EXPECT_EQ(choose(3, -1), 0u);
}

class PascalIdentity : public ::testing::TestWithParam<int> {};

TEST_P(PascalIdentity, RecurrenceHolds) {
  const int n = GetParam();
  for (int k = 1; k < n; ++k) {
    EXPECT_EQ(choose(n, k), choose(n - 1, k - 1) + choose(n - 1, k));
  }
}

TEST_P(PascalIdentity, RowSumsToPowerOfTwo) {
  const int n = GetParam();
  std::uint64_t sum = 0;
  for (int k = 0; k <= n; ++k) sum += choose(n, k);
  EXPECT_EQ(sum, std::uint64_t{1} << n);
}

TEST_P(PascalIdentity, Symmetry) {
  const int n = GetParam();
  for (int k = 0; k <= n; ++k) {
    EXPECT_EQ(choose(n, k), choose(n, n - k));
  }
}

INSTANTIATE_TEST_SUITE_P(Rows, PascalIdentity,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 16, 20, 34));

TEST(Binomial, FallingFactorial) {
  EXPECT_DOUBLE_EQ(falling_factorial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(falling_factorial(5, 1), 5.0);
  EXPECT_DOUBLE_EQ(falling_factorial(5, 3), 60.0);
  EXPECT_DOUBLE_EQ(falling_factorial(12, 12), 479001600.0);
}

TEST(Binomial, ColorfulProbabilityMatchesFormula) {
  // P(k=h) = k! / k^k.
  EXPECT_NEAR(colorful_probability(3, 3), 6.0 / 27.0, 1e-15);
  EXPECT_NEAR(colorful_probability(5, 5), 120.0 / 3125.0, 1e-15);
  // h > k impossible.
  EXPECT_DOUBLE_EQ(colorful_probability(3, 4), 0.0);
  // Extra colors raise the probability.
  EXPECT_GT(colorful_probability(8, 5), colorful_probability(5, 5));
  // h = 1 is always colorful.
  EXPECT_DOUBLE_EQ(colorful_probability(7, 1), 1.0);
}

TEST(Binomial, ColorfulProbabilityMonotoneInColors) {
  double previous = 0.0;
  for (int k = 7; k <= 16; ++k) {
    const double p = colorful_probability(k, 7);
    EXPECT_GT(p, previous);
    previous = p;
  }
}

}  // namespace
}  // namespace fascia
