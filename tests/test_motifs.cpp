#include "core/motifs.hpp"

#include <gtest/gtest.h>

#include "core/counter.hpp"
#include "exact/pattern_growth.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace fascia {
namespace {

Graph test_graph() {
  static const Graph g = largest_component(erdos_renyi_gnm(50, 120, 41));
  return g;
}

TEST(Motifs, ProfileCoversAllTreelets) {
  CountOptions options;
  options.sampling.iterations = 2;
  options.execution.mode = ParallelMode::kSerial;
  const MotifProfile profile = count_all_treelets(test_graph(), 5, options);
  EXPECT_EQ(profile.k, 5);
  EXPECT_EQ(profile.trees.size(), 3u);
  EXPECT_EQ(profile.counts.size(), 3u);
  EXPECT_EQ(profile.seconds.size(), 3u);
  EXPECT_GT(profile.seconds_total, 0.0);
}

TEST(Motifs, RelativeFrequenciesMeanOne) {
  CountOptions options;
  options.sampling.iterations = 3;
  options.execution.mode = ParallelMode::kSerial;
  const MotifProfile profile = count_all_treelets(test_graph(), 5, options);
  const auto rel = profile.relative_frequencies();
  EXPECT_NEAR(mean(rel), 1.0, 1e-9);
}

TEST(Motifs, ProfileConvergesToExact) {
  const Graph g = test_graph();
  CountOptions options;
  options.sampling.iterations = 800;
  options.execution.mode = ParallelMode::kSerial;
  const MotifProfile profile = count_all_treelets(g, 4, options);
  const auto exact = exact::count_all_trees_by_growth(g, 4);
  ASSERT_EQ(profile.counts.size(), exact.counts.size());
  for (std::size_t i = 0; i < profile.counts.size(); ++i) {
    EXPECT_NEAR(profile.counts[i], exact.counts[i],
                exact.counts[i] * 0.15 + 1.0)
        << "shape " << i;
  }
}

TEST(Motifs, DeterministicInSeed) {
  CountOptions options;
  options.sampling.iterations = 2;
  options.execution.mode = ParallelMode::kSerial;
  options.sampling.seed = 55;
  const auto a = count_all_treelets(test_graph(), 5, options);
  const auto b = count_all_treelets(test_graph(), 5, options);
  EXPECT_EQ(a.counts, b.counts);
}

TEST(Motifs, TemplatesUseDistinctSeeds) {
  // Different templates must not share colorings: with 1 iteration the
  // estimates for two path-isomorphic... there is only one path shape,
  // so instead check that the profile is not constant across shapes
  // (which would hint at correlated colorings on this asymmetric graph).
  CountOptions options;
  options.sampling.iterations = 1;
  options.execution.mode = ParallelMode::kSerial;
  const auto profile = count_all_treelets(test_graph(), 5, options);
  EXPECT_FALSE(profile.counts[0] == profile.counts[1] &&
               profile.counts[1] == profile.counts[2]);
}

TEST(Motifs, EmptyProfileOnTinyGraph) {
  // Graph smaller than k: counts are all zero but structure is intact.
  const Graph g = largest_component(erdos_renyi_gnm(3, 2, 1));
  CountOptions options;
  options.sampling.iterations = 2;
  options.execution.mode = ParallelMode::kSerial;
  const auto profile = count_all_treelets(g, 5, options);
  for (double count : profile.counts) EXPECT_DOUBLE_EQ(count, 0.0);
}

}  // namespace
}  // namespace fascia
