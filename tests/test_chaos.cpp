// Chaos harness for the hardened counting service (ISSUE 7).
//
// The contract under test: every job the service ACCEPTS either
// completes bit-identically to an uninterrupted run or surfaces a
// typed error — never silently vanishes, never hangs a client —
// across load shedding, drain, graceful shutdown, kill -9 mid-job,
// torn reply frames, dropped connections, and journal write failures.
//
// Three layers:
//   * Journal unit tests (format round-trip, torn tail, corruption);
//   * in-process Service chaos (shed / drain / park-restart-resume);
//   * subprocess chaos: fork the real fascia_server daemon, SIGKILL it
//     mid-batch-job, restart on the same journal, and assert the
//     journal-replayed, checkpoint-resumed result is bit-identical to
//     the direct library call (the acceptance gate of ISSUE 7).
// Fault-injection tests (FASCIA_FAULT_INJECTION builds) additionally
// drive the wire-layer fault sites through svc::Client retries.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/counter.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "svc/client.hpp"
#include "svc/journal.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "treelet/catalog.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/framing.hpp"
#include "util/socket.hpp"

#ifndef FASCIA_SERVER_BIN
#define FASCIA_SERVER_BIN ""
#endif

namespace fascia {
namespace {

using obs::Json;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// ---- journal format --------------------------------------------------------

TEST(Journal, RoundTripsCheckummedRecords) {
  const std::string path = temp_path("fascia_journal_rt.fjrn");
  {
    svc::Journal journal = svc::Journal::open_truncate(path);
    journal.append(svc::JournalKind::kGraph, 0, "{\"name\":\"g\"}");
    journal.append(svc::JournalKind::kAccepted, 7, "{\"op\":\"count\"}");
    journal.append(svc::JournalKind::kFinished, 7, "completed");
  }
  const svc::JournalReplay replay = svc::Journal::replay(path);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.torn_bytes, 0u);
  EXPECT_EQ(replay.records[0].kind, svc::JournalKind::kGraph);
  EXPECT_EQ(replay.records[0].payload, "{\"name\":\"g\"}");
  EXPECT_EQ(replay.records[1].kind, svc::JournalKind::kAccepted);
  EXPECT_EQ(replay.records[1].id, 7u);
  EXPECT_EQ(replay.records[2].payload, "completed");
}

TEST(Journal, AppendModePreservesExistingRecords) {
  const std::string path = temp_path("fascia_journal_app.fjrn");
  {
    svc::Journal journal = svc::Journal::open_truncate(path);
    journal.append(svc::JournalKind::kAccepted, 1, "a");
  }
  {
    svc::Journal journal = svc::Journal::open_append(path);
    journal.append(svc::JournalKind::kAccepted, 2, "b");
  }
  const svc::JournalReplay replay = svc::Journal::replay(path);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0].id, 1u);
  EXPECT_EQ(replay.records[1].id, 2u);
}

TEST(Journal, TornTailIsDiscardedNotFatal) {
  const std::string path = temp_path("fascia_journal_torn.fjrn");
  {
    svc::Journal journal = svc::Journal::open_truncate(path);
    journal.append(svc::JournalKind::kAccepted, 1, "first record");
    journal.append(svc::JournalKind::kAccepted, 2, "second record");
  }
  struct stat st {};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  // Chop into the middle of the second record: a crash mid-append.
  ASSERT_EQ(::truncate(path.c_str(), st.st_size - 5), 0);
  const svc::JournalReplay replay = svc::Journal::replay(path);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].payload, "first record");
  EXPECT_GT(replay.torn_bytes, 0u);
}

TEST(Journal, CorruptChecksumEndsTheScan) {
  const std::string path = temp_path("fascia_journal_crc.fjrn");
  {
    svc::Journal journal = svc::Journal::open_truncate(path);
    journal.append(svc::JournalKind::kAccepted, 1, "payload under crc");
    journal.append(svc::JournalKind::kAccepted, 2, "never reached");
  }
  const int fd = ::open(path.c_str(), O_WRONLY);
  ASSERT_GE(fd, 0);
  // Flip the first payload byte (offset 20: after magic+kind+id+len).
  const char evil = 'X';
  ASSERT_EQ(::pwrite(fd, &evil, 1, 20), 1);
  ::close(fd);
  const svc::JournalReplay replay = svc::Journal::replay(path);
  EXPECT_EQ(replay.records.size(), 0u);
  EXPECT_GT(replay.torn_bytes, 0u);
}

TEST(Journal, MissingFileYieldsEmptyReplay) {
  const svc::JournalReplay replay =
      svc::Journal::replay(temp_path("fascia_journal_never_written.fjrn"));
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(replay.bytes, 0u);
}

// ---- in-process service chaos ----------------------------------------------

svc::JobSpec batch_spec(int iterations, const std::string& request_id) {
  svc::JobSpec spec;
  spec.kind = svc::JobKind::kBatch;
  spec.graph = "g";
  sched::BatchJob job;
  job.tmpl = catalog_entry("U7-1").tree;
  job.iterations = iterations;
  spec.batch_jobs.push_back(job);
  spec.batch_options.seed = 77;
  spec.batch_options.mode = ParallelMode::kSerial;
  spec.priority = svc::Priority::kBatch;
  spec.request_id = request_id;
  return spec;
}

svc::JobSpec interactive_spec() {
  svc::JobSpec spec;
  spec.kind = svc::JobKind::kCount;
  spec.graph = "g";
  spec.tmpl = catalog_entry("U5-1").tree;
  spec.options.sampling.iterations = 2;
  spec.options.sampling.seed = 5;
  spec.options.execution.mode = ParallelMode::kSerial;
  spec.priority = svc::Priority::kInteractive;
  return spec;
}

bool wait_for_state(svc::Service& service, svc::JobId id, svc::JobState state,
                    double timeout_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    if (service.info(id).state == state) return true;
    sleep_ms(2);
  }
  return false;
}

TEST(ChaosService, BatchShedsWithRetryAfterWhileInteractiveFlows) {
  svc::Service::Config config;
  config.workers = 1;
  config.max_queued_batch = 1;
  config.work_dir = temp_path("chaos_shed_work");
  svc::Service service(config);
  service.registry().put("g", erdos_renyi_gnm(1500, 9000, 3));

  const svc::JobId running = service.submit(batch_spec(1500, "run"));
  ASSERT_TRUE(
      wait_for_state(service, running, svc::JobState::kRunning, 10.0));
  const svc::JobId queued = service.submit(batch_spec(10, "queued"));
  try {
    service.submit(batch_spec(10, "shed-me"));
    FAIL() << "expected OverloadedError from a full batch queue";
  } catch (const svc::OverloadedError& e) {
    EXPECT_GT(e.retry_after_seconds(), 0.0);
  }

  // The point of shedding batch work: interactive jobs still flow (the
  // saturated worker preempts the running batch job for this).
  const svc::JobId urgent = service.submit(interactive_spec());
  EXPECT_EQ(service.wait(urgent).state, svc::JobState::kCompleted);

  const svc::Service::Health health = service.health();
  EXPECT_GE(health.shed_total, 1u);
  service.cancel(running);
  service.cancel(queued);
}

TEST(ChaosService, RequestIdDedupsResubmits) {
  svc::Service::Config config;
  config.workers = 1;
  svc::Service service(config);
  service.registry().put("g", erdos_renyi_gnm(300, 1200, 3));
  const svc::JobId first = service.submit(batch_spec(3, "same-token"));
  const svc::JobId second = service.submit(batch_spec(3, "same-token"));
  EXPECT_EQ(first, second);
  EXPECT_EQ(service.wait(first).state, svc::JobState::kCompleted);
}

TEST(ChaosService, DrainParksBatchWorkAndRejectsNewSubmits) {
  svc::Service::Config config;
  config.workers = 1;
  config.work_dir = temp_path("chaos_drain_work");
  svc::Service service(config);
  service.registry().put("g", erdos_renyi_gnm(1500, 9000, 3));

  const svc::JobId id = service.submit(batch_spec(2000, "drain-1"));
  ASSERT_TRUE(wait_for_state(service, id, svc::JobState::kRunning, 10.0));
  service.drain();
  EXPECT_TRUE(service.draining());

  // wait() must not hang across a drain: it returns the parked,
  // non-terminal snapshot.
  const svc::JobInfo parked = service.wait(id);
  EXPECT_FALSE(svc::job_state_terminal(parked.state));

  EXPECT_THROW(service.submit(batch_spec(2, "post-drain")),
               svc::OverloadedError);
  // ... but a RETRY of an already-accepted request observes its
  // original job instead of being rejected.
  EXPECT_EQ(service.submit(batch_spec(2000, "drain-1")), id);
}

TEST(ChaosService, RestartResumesParkedBatchBitIdentically) {
  const std::string work = temp_path("chaos_restart_work");
  const std::string journal = temp_path("chaos_restart.fjrn");
  std::filesystem::remove_all(work);
  std::filesystem::remove(journal);

  // Reference: the uninterrupted run, straight through the library.
  const Graph graph = load_or_make("enron", "", 0.05, 1);
  std::vector<sched::BatchJob> jobs(1);
  jobs[0].tmpl = catalog_entry("U7-1").tree;
  jobs[0].iterations = 300;
  sched::BatchOptions options;
  options.seed = 77;
  options.mode = ParallelMode::kSerial;
  const sched::BatchResult expected = sched::run_batch(graph, jobs, options);

  svc::Service::Config config;
  config.workers = 1;
  config.work_dir = work;
  config.journal_path = journal;
  config.shutdown_grace_seconds = 5.0;

  {
    svc::Service service(config);
    service.load_graph("g", "enron", "", 0.05, 1, false);
    const svc::JobId id = service.submit(batch_spec(300, "restart-1"));
    ASSERT_TRUE(wait_for_state(service, id, svc::JobState::kRunning, 10.0));
    sleep_ms(100);  // let a few checkpointed iterations land
    // ~Service: graceful shutdown parks the running batch job at its
    // next checkpoint; the journal keeps it resumable.
  }

  svc::Service service(config);
  EXPECT_GE(service.health().journal_replays, 1u);
  // The same request_id attaches to the replayed job.
  const svc::JobId id = service.submit(batch_spec(300, "restart-1"));
  const svc::JobInfo done = service.wait(id);
  ASSERT_EQ(done.state, svc::JobState::kCompleted);
  const sched::BatchResult result = service.batch_result(id);
  // Bit-identical, not approximately equal: counter-mode RNG makes the
  // resumed run reproduce the uninterrupted one exactly.
  EXPECT_EQ(result.estimate, expected.estimate);
  ASSERT_EQ(result.jobs.size(), expected.jobs.size());
  EXPECT_EQ(result.jobs[0].estimate, expected.jobs[0].estimate);
}

// ---- client deadlines ------------------------------------------------------

TEST(ChaosClient, OpTimeoutSurfacesTypedErrorNotAHang) {
  util::Listener listener = util::Listener::tcp("127.0.0.1", 0);
  std::thread acceptor([&] {
    util::Socket peer = listener.accept();
    if (!peer.valid()) return;
    // Read the request, then go mute: never reply.
    std::string sink;
    try {
      while (util::read_frame(peer.fd(), &sink)) {
      }
    } catch (const std::exception&) {
    }
  });

  svc::Client::RetryOptions retry;
  retry.max_attempts = 1;
  retry.op_timeout_seconds = 0.3;
  svc::Client client =
      svc::Client::connect_tcp("127.0.0.1", listener.port(), retry);
  try {
    client.status();
    FAIL() << "expected a timeout error from the mute server";
  } catch (const Error& e) {
    EXPECT_EQ(e.context(), util::kTimeoutContext);
  }
  client.close();  // acceptor sees EOF and winds down
  acceptor.join();
  listener.close();
}

// ---- subprocess chaos: kill -9 mid-job, restart, bit-identical -------------

pid_t spawn_server(const std::string& bin,
                   const std::vector<std::string>& args,
                   const std::string& log_path) {
  // A stale log from an earlier run still names an OLD port;
  // read_listening_port must never be able to win the race against the
  // child's O_TRUNC and connect to a dead (or leaked) server.
  std::filesystem::remove(log_path);
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    ::dup2(fd, STDOUT_FILENO);
    ::dup2(fd, STDERR_FILENO);
  }
  std::vector<std::string> all;
  all.push_back(bin);
  all.insert(all.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(all.size() + 1);
  for (std::string& arg : all) argv.push_back(arg.data());
  argv.push_back(nullptr);
  ::execv(bin.c_str(), argv.data());
  ::_exit(127);
}

int read_listening_port(const std::string& log_path) {
  const std::string prefix = "listening tcp 127.0.0.1:";
  for (int attempt = 0; attempt < 400; ++attempt) {
    std::ifstream in(log_path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind(prefix, 0) == 0) {
        return std::stoi(line.substr(prefix.size()));
      }
    }
    sleep_ms(25);
  }
  return -1;
}

/// Guarantees no daemon outlives the test: an ASSERT failure mid-test
/// must not leak a server that later runs would rediscover through
/// stale logs or a shared journal path.
struct ServerGuard {
  pid_t pid = -1;
  ~ServerGuard() {
    if (pid > 0 && ::waitpid(pid, nullptr, WNOHANG) == 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }
};

void reap_with_deadline(pid_t pid) {
  for (int attempt = 0; attempt < 600; ++attempt) {
    if (::waitpid(pid, nullptr, WNOHANG) == pid) return;
    sleep_ms(25);
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
}

Json wire_batch_request(int iterations, const std::string& request_id) {
  Json request = Json::object();
  request["op"] = "run_batch";
  request["graph"] = "g";
  request["priority"] = "batch";
  request["request_id"] = request_id;
  Json jobs = Json::array();
  Json job = Json::object();
  Json tmpl = Json::object();
  tmpl["name"] = "U7-1";
  job["template"] = std::move(tmpl);
  job["iterations"] = iterations;
  jobs.push_back(std::move(job));
  request["jobs"] = std::move(jobs);
  Json options = Json::object();
  options["seed"] = 77;
  options["mode"] = "serial";
  request["options"] = std::move(options);
  return request;
}

TEST(ChaosServer, Kill9MidJobThenRestartReplaysBitIdentically) {
  const std::string bin = FASCIA_SERVER_BIN;
  if (bin.empty() || ::access(bin.c_str(), X_OK) != 0) {
    GTEST_SKIP() << "fascia_server binary not available";
  }
  const std::string work = temp_path("chaos_k9_work");
  const std::string journal = temp_path("chaos_k9.fjrn");
  std::filesystem::remove_all(work);
  std::filesystem::remove(journal);
  const std::vector<std::string> args = {
      "--port", "0",         "--workers",       "1",  "--work-dir", work,
      "--journal", journal,  "--grace-seconds", "0.5"};

  // Reference: the uninterrupted run through the library.
  const Graph graph = load_or_make("enron", "", 0.05, 1);
  std::vector<sched::BatchJob> jobs(1);
  jobs[0].tmpl = catalog_entry("U7-1").tree;
  jobs[0].iterations = 400;
  sched::BatchOptions options;
  options.seed = 77;
  options.mode = ParallelMode::kSerial;
  const sched::BatchResult expected = sched::run_batch(graph, jobs, options);

  const pid_t pid = spawn_server(bin, args, temp_path("chaos_k9_a.log"));
  ASSERT_GT(pid, 0);
  ServerGuard guard_a{pid};
  const int port = read_listening_port(temp_path("chaos_k9_a.log"));
  ASSERT_GT(port, 0) << "server did not come up";

  {
    svc::Client client = svc::Client::connect_tcp("127.0.0.1", port);
    ASSERT_TRUE(client.load_graph("g", "enron", "", 0.05, 1).get_bool("ok"));
  }
  std::thread submitter([&] {
    try {
      svc::Client client = svc::Client::connect_tcp("127.0.0.1", port);
      (void)client.request(wire_batch_request(400, "k9-1"));
    } catch (const std::exception&) {
      // The SIGKILL guarantees a transport error here; that is the
      // crash being injected, not a test failure.
    }
  });

  // Wait until the job is observably running, then murder the daemon.
  bool running = false;
  svc::Client poller = svc::Client::connect_tcp("127.0.0.1", port);
  for (int attempt = 0; attempt < 2000 && !running; ++attempt) {
    const Json status = poller.status();
    const Json* wire_jobs = status.find("jobs");
    if (wire_jobs != nullptr) {
      for (const Json& info : wire_jobs->elements()) {
        running = running || info.get_string("state") == "running";
      }
    }
    if (!running) sleep_ms(5);
  }
  ASSERT_TRUE(running) << "batch job never started";
  sleep_ms(100);  // give the checkpointer a few iterations
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  ::waitpid(pid, nullptr, 0);
  poller.close();
  submitter.join();

  // Restart on the same journal + work dir: the accepted job replays
  // and resumes from its checkpoint.
  const pid_t pid2 = spawn_server(bin, args, temp_path("chaos_k9_b.log"));
  ASSERT_GT(pid2, 0);
  ServerGuard guard_b{pid2};
  const int port2 = read_listening_port(temp_path("chaos_k9_b.log"));
  ASSERT_GT(port2, 0) << "restarted server did not come up";

  svc::Client client = svc::Client::connect_tcp("127.0.0.1", port2);
  const Json health = client.health();
  ASSERT_TRUE(health.get_bool("ok"));
  EXPECT_GE(health.get_int("journal_replays"), 1);

  // Retrying the SAME request_id attaches to the recovered job and
  // returns a result bit-identical to the uninterrupted reference.
  const Json reply = client.request(wire_batch_request(400, "k9-1"));
  ASSERT_TRUE(reply.get_bool("ok")) << reply.dump();
  EXPECT_EQ(reply.get_string("state"), "completed");
  EXPECT_EQ(reply.get_double("estimate"), expected.estimate);
  const Json* job_results = reply.find("jobs");
  ASSERT_NE(job_results, nullptr);
  ASSERT_EQ(job_results->size(), 1u);
  EXPECT_EQ(job_results->elements()[0].get_double("estimate"),
            expected.jobs[0].estimate);

  (void)client.shutdown();
  reap_with_deadline(pid2);
}

// ---- wire-layer fault injection --------------------------------------------

#ifdef FASCIA_FAULT_INJECTION

Json wire_count_request(int iterations, std::uint64_t seed,
                        const std::string& request_id) {
  Json request = Json::object();
  request["op"] = "count";
  request["graph"] = "g";
  request["request_id"] = request_id;
  Json tmpl = Json::object();
  tmpl["name"] = "U5-2";
  request["template"] = std::move(tmpl);
  Json options = Json::object();
  options["iterations"] = iterations;
  options["seed"] = seed;
  options["mode"] = "serial";
  request["options"] = std::move(options);
  return request;
}

class ChaosFault : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

TEST_F(ChaosFault, TornAndDroppedRepliesAreRetriedToTheSameResult) {
  const Graph graph = erdos_renyi_gnm(700, 2800, 13);
  CountOptions direct;
  direct.sampling.iterations = 6;
  direct.sampling.seed = 29;
  direct.execution.mode = ParallelMode::kSerial;
  const CountResult expected =
      count_template(graph, catalog_entry("U5-2").tree, direct);

  svc::Server::Config config;
  svc::Server server(config);
  server.service().registry().put("g", erdos_renyi_gnm(700, 2800, 13));
  server.start();

  svc::Client::RetryOptions retry;
  retry.max_attempts = 4;
  retry.backoff_initial_seconds = 0.01;
  retry.backoff_max_seconds = 0.05;
  svc::Client client =
      svc::Client::connect_tcp("127.0.0.1", server.port(), retry);

  // Torn terminal frame: the client sees a truncated payload, retries
  // with its request_id, and the dedup map hands back the original
  // (finished) job.
  fault::arm("svc.send.torn", 1);
  Json reply = client.request(wire_count_request(6, 29, "torn-1"));
  ASSERT_TRUE(reply.get_bool("ok")) << reply.dump();
  EXPECT_EQ(reply.get_double("estimate"), expected.estimate);
  EXPECT_GE(fault::hits("svc.send.torn"), 1);

  // Mid-stream disconnect instead of a reply.
  fault::arm("svc.send.disconnect", 1);
  reply = client.request(wire_count_request(6, 29, "disc-1"));
  ASSERT_TRUE(reply.get_bool("ok")) << reply.dump();
  EXPECT_EQ(reply.get_double("estimate"), expected.estimate);

  // Crash window between job completion and the terminal frame: the
  // retried request_id must recover the FINISHED result, not re-run.
  fault::arm("svc.reply.drop", 1);
  reply = client.request(wire_count_request(6, 29, "drop-1"));
  ASSERT_TRUE(reply.get_bool("ok")) << reply.dump();
  EXPECT_EQ(reply.get_double("estimate"), expected.estimate);

  server.stop();
}

TEST_F(ChaosFault, JournalAppendFailureRejectsTheJobNotTheService) {
  const std::string journal = temp_path("chaos_jfail.fjrn");
  std::filesystem::remove(journal);
  svc::Service::Config config;
  config.workers = 1;
  config.journal_path = journal;
  svc::Service service(config);
  service.registry().put("g", erdos_renyi_gnm(300, 1200, 3));

  fault::arm("journal.append", 1);
  try {
    service.submit(batch_spec(2, "doomed"));
    FAIL() << "expected the accept-time journal failure to reject the job";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kResource);
  }
  // The rejection is complete: no half-admitted record, dedup token
  // free again, and the service keeps serving.
  EXPECT_TRUE(service.jobs().empty());
  const svc::JobId id = service.submit(batch_spec(2, "doomed"));
  EXPECT_EQ(service.wait(id).state, svc::JobState::kCompleted);
}

#endif  // FASCIA_FAULT_INJECTION

}  // namespace
}  // namespace fascia
