#include "treelet/catalog.hpp"

#include <gtest/gtest.h>

#include "treelet/canonical.hpp"
#include "treelet/partition.hpp"
#include "util/error.hpp"

namespace fascia {
namespace {

TEST(Catalog, TenTemplatesInPaperOrder) {
  const auto& catalog = template_catalog();
  ASSERT_EQ(catalog.size(), 10u);
  const char* expected[] = {"U3-1", "U3-2", "U5-1", "U5-2", "U7-1",
                            "U7-2", "U10-1", "U10-2", "U12-1", "U12-2"};
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog[i].name, expected[i]);
  }
}

TEST(Catalog, SizesMatchNames) {
  for (const auto& entry : template_catalog()) {
    const int expected = std::stoi(entry.name.substr(1, entry.name.find('-') - 1));
    EXPECT_EQ(entry.size, expected) << entry.name;
    EXPECT_EQ(entry.tree.size(), expected) << entry.name;
  }
}

TEST(Catalog, DashOneTemplatesArePaths) {
  for (const char* name : {"U3-1", "U5-1", "U7-1", "U10-1", "U12-1"}) {
    const auto& entry = catalog_entry(name);
    EXPECT_TRUE(isomorphic(entry.tree, TreeTemplate::path(entry.size)))
        << name;
  }
}

TEST(Catalog, OnlyU32IsTriangle) {
  for (const auto& entry : template_catalog()) {
    EXPECT_EQ(entry.is_triangle, entry.name == "U3-2") << entry.name;
  }
}

TEST(Catalog, U52HasDegreeThreeCentralVertex) {
  // §V-F roots the GDD analysis at U5-2's degree-3 vertex.
  const auto& entry = catalog_entry("U5-2");
  EXPECT_EQ(entry.tree.degree(u52_central_vertex()), 3);
}

TEST(Catalog, U72HasRootedSymmetry) {
  // §III-C: "An obvious example can be seen in template U7-2" — its
  // automorphism group is nontrivial (three interchangeable legs).
  EXPECT_EQ(automorphisms(catalog_entry("U7-2").tree), 6u);
}

TEST(Catalog, DashTwoTemplatesAreNotPaths) {
  for (const char* name : {"U5-2", "U7-2", "U10-2", "U12-2"}) {
    const auto& entry = catalog_entry(name);
    EXPECT_FALSE(isomorphic(entry.tree, TreeTemplate::path(entry.size)))
        << name;
  }
}

TEST(Catalog, UnknownNameThrows) {
  EXPECT_THROW(catalog_entry("U99-1"), fascia::Error);
}

TEST(Catalog, U122StressesPartitioning) {
  // U12-2's one-at-a-time DP cost exceeds the plain path's — it was
  // "explicitly designed to stress subtemplate partitioning" (§V-A).
  const auto& complex_tree = catalog_entry("U12-2").tree;
  const auto& path_tree = catalog_entry("U12-1").tree;
  const auto cost = [](const TreeTemplate& t) {
    return partition_template(t, PartitionStrategy::kOneAtATime, true)
        .dp_cost(12);
  };
  EXPECT_GT(cost(complex_tree), cost(path_tree));
}

}  // namespace
}  // namespace fascia
