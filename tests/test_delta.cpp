// GraphDelta / Graph::apply / incremental recount suite.
//
// The load-bearing property: an incremental recount after a delta is
// BIT-IDENTICAL (==, not near) to a full count_template of the mutated
// graph under the same seed, across every table layout and both kernel
// families.  Everything else here guards the road to that: delta
// validation maps to the error taxonomy, apply() equals a batch
// rebuild, and the dirty-ball BFS is what the theory says.

#include "graph/delta.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <random>
#include <vector>

#include "core/counter.hpp"
#include "core/engine.hpp"
#include "core/incremental.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/labels.hpp"
#include "graph/source.hpp"
#include "treelet/tree_template.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fascia {
namespace {

Graph grid_graph() {
  // Deterministic, edited-by-hand-sized network with room for both
  // inserts and deletes.
  return largest_component(erdos_renyi_gnm(60, 150, 7));
}

// ---- GraphDelta validation: the malformed-delta corpus ----------------

ErrorCategory category_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.category();
  }
  ADD_FAILURE() << "expected a fascia::Error";
  return ErrorCategory::kInternal;
}

TEST(GraphDelta, NormalizesAndRejectsMalformedEdits) {
  GraphDelta d;
  d.insert(5, 2);  // normalized to (2, 5)
  EXPECT_EQ(d.insertions().front(), (Edge{2, 5}));

  EXPECT_EQ(category_of([] {
              GraphDelta x;
              x.insert(3, 3);
            }),
            ErrorCategory::kUsage);
  EXPECT_EQ(category_of([] {
              GraphDelta x;
              x.remove(-1, 2);
            }),
            ErrorCategory::kUsage);
}

TEST(GraphDelta, ValidateMapsToErrorTaxonomy) {
  const Graph g = grid_graph();
  const Edge present = edge_list(g).front();
  const VertexId n = g.num_vertices();

  // Duplicate edit -> usage.
  GraphDelta dup;
  dup.insert(n - 2, n - 1);
  dup.insert(n - 1, n - 2);
  EXPECT_EQ(category_of([&] { dup.validate(g); }), ErrorCategory::kUsage);
  dup.dedup();
  // dedup() collapses the exact repeat; validity then depends only on
  // the graph.
  EXPECT_EQ(dup.size(), 1u);

  // Insert + delete of one edge in the same batch -> usage.
  GraphDelta conflict;
  conflict.insert(present.first, present.second);
  conflict.remove(present.first, present.second);
  EXPECT_EQ(category_of([&] { conflict.validate(g); }),
            ErrorCategory::kUsage);

  // Unknown vertex -> bad input.
  GraphDelta oob;
  oob.insert(0, n);
  EXPECT_EQ(category_of([&] { oob.validate(g); }), ErrorCategory::kBadInput);

  // Insert of a present edge -> bad input.
  GraphDelta redundant;
  redundant.insert(present.first, present.second);
  EXPECT_EQ(category_of([&] { redundant.validate(g); }),
            ErrorCategory::kBadInput);

  // Delete of an absent edge -> bad input.
  GraphDelta phantom;
  VertexId u = 0;
  VertexId v = 1;
  while (g.has_edge(u, v)) ++v;  // some absent pair exists (sparse graph)
  phantom.remove(u, v);
  EXPECT_EQ(category_of([&] { phantom.validate(g); }),
            ErrorCategory::kBadInput);
}

TEST(GraphDelta, TouchedVerticesIsSortedUniqueEndpointSet) {
  GraphDelta d;
  d.insert(9, 4);
  d.remove(4, 2);
  d.insert(7, 9);
  EXPECT_EQ(d.touched_vertices(), (std::vector<VertexId>{2, 4, 7, 9}));
}

// ---- Graph::apply == batch rebuild ------------------------------------

void expect_same_csr(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "degree mismatch at " << v;
    for (std::size_t i = 0; i < na.size(); ++i) {
      ASSERT_EQ(na[i], nb[i]) << "adjacency mismatch at " << v;
    }
  }
  ASSERT_EQ(a.has_labels(), b.has_labels());
  if (a.has_labels()) {
    for (VertexId v = 0; v < a.num_vertices(); ++v) {
      ASSERT_EQ(a.label(v), b.label(v));
    }
  }
}

/// Random delta against `g`: `inserts` absent pairs + `deletes`
/// present edges, disjoint and deduplicated.
GraphDelta random_delta(const Graph& g, int inserts, int deletes,
                        Xoshiro256& rng) {
  GraphDelta d;
  const auto n = static_cast<std::uint32_t>(g.num_vertices());
  std::vector<Edge> ins;
  while (static_cast<int>(ins.size()) < inserts) {
    const VertexId u = static_cast<VertexId>(rng.bounded(n));
    const VertexId v = static_cast<VertexId>(rng.bounded(n));
    if (u == v || g.has_edge(u, v)) continue;
    const Edge e{std::min(u, v), std::max(u, v)};
    if (std::find(ins.begin(), ins.end(), e) != ins.end()) continue;
    ins.push_back(e);
    d.insert(e.first, e.second);
  }
  EdgeList edges = edge_list(g);
  std::vector<Edge> del;
  while (static_cast<int>(del.size()) < deletes &&
         del.size() < edges.size()) {
    const Edge e =
        edges[rng.bounded(static_cast<std::uint32_t>(edges.size()))];
    if (std::find(del.begin(), del.end(), e) != del.end()) continue;
    del.push_back(e);
    d.remove(e.first, e.second);
  }
  return d;
}

TEST(GraphApply, SequenceOfDeltasEqualsBatchRebuild) {
  Graph g = grid_graph();
  assign_random_labels(g, 4, 13);
  const std::uint64_t version0 = g.version();
  Xoshiro256 rng(99);
  for (int round = 0; round < 8; ++round) {
    GraphDelta delta = random_delta(g, 3 + round % 4, 2 + round % 3, rng);
    // Shuffle the issue order inside the batch: apply() semantics are
    // a SET of edits, so order must not matter.
    GraphDelta shuffled;
    EdgeList ins = delta.insertions();
    EdgeList del = delta.deletions();
    std::shuffle(ins.begin(), ins.end(), std::mt19937(round));
    std::shuffle(del.begin(), del.end(), std::mt19937(round + 1));
    for (const auto& [u, v] : ins) shuffled.insert(v, u);
    for (const auto& [u, v] : del) shuffled.remove(v, u);

    // Expected graph: batch rebuild from the edited edge list.
    EdgeList edges = edge_list(g);
    for (const Edge& e : del) {
      edges.erase(std::remove(edges.begin(), edges.end(), e), edges.end());
    }
    edges.insert(edges.end(), ins.begin(), ins.end());
    Graph rebuilt = build_graph(g.num_vertices(), edges);
    std::vector<std::uint8_t> labels;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      labels.push_back(g.label(v));
    }
    rebuilt.set_labels(labels, 4);

    g.apply(shuffled);
    expect_same_csr(g, rebuilt);
    EXPECT_EQ(g.version(), version0 + static_cast<std::uint64_t>(round) + 1);
  }
}

TEST(GraphApply, ValidatesBeforeMutating) {
  Graph g = grid_graph();
  const EdgeList before = edge_list(g);
  GraphDelta bad;
  bad.insert(g.num_vertices() - 1, g.num_vertices());
  EXPECT_THROW(g.apply(bad), Error);
  EXPECT_EQ(edge_list(g), before);  // untouched on failure
  EXPECT_EQ(g.version(), 0u);
}

TEST(GraphApply, EmptyDeltaBumpsVersionOnly) {
  Graph g = grid_graph();
  const EdgeList before = edge_list(g);
  g.apply(GraphDelta{});
  EXPECT_EQ(edge_list(g), before);
  EXPECT_EQ(g.version(), 1u);
}

// ---- DirtyBalls -------------------------------------------------------

TEST(DirtyBalls, BfsDistancesOnAPath) {
  // 0-1-2-3-4-5 path; seed {2}.
  EdgeList edges{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
  const Graph g = build_graph(6, edges);
  const DirtyBalls balls = DirtyBalls::build(g, {2}, 2);
  EXPECT_EQ(balls.distance, (std::vector<int>{2, 1, 0, 1, 2, -1}));
  EXPECT_EQ(balls.at(0), (std::vector<VertexId>{2}));
  EXPECT_EQ(balls.at(1), (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(balls.at(2), (std::vector<VertexId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(balls.at(9), balls.at(2));  // clamped to the built radius
  EXPECT_TRUE(balls.dirty(3, 1));
  EXPECT_FALSE(balls.dirty(4, 1));
  EXPECT_FALSE(balls.dirty(5, 2));
}

// ---- incremental recount == full recount, bit for bit -----------------

void expect_bit_identical(const CountResult& incremental,
                          const CountResult& full) {
  ASSERT_EQ(incremental.per_iteration.size(), full.per_iteration.size());
  for (std::size_t i = 0; i < full.per_iteration.size(); ++i) {
    ASSERT_EQ(incremental.per_iteration[i], full.per_iteration[i])
        << "iteration " << i;
  }
  ASSERT_EQ(incremental.estimate, full.estimate);
  ASSERT_EQ(incremental.vertex_counts.size(), full.vertex_counts.size());
  for (std::size_t v = 0; v < full.vertex_counts.size(); ++v) {
    ASSERT_EQ(incremental.vertex_counts[v], full.vertex_counts[v])
        << "vertex " << v;
  }
}

struct IncrementalCase {
  TableKind table;
  KernelFamily family;
  bool labeled;
};

class IncrementalBitIdentity
    : public ::testing::TestWithParam<IncrementalCase> {};

TEST_P(IncrementalBitIdentity, RecountMatchesFullRecount) {
  const IncrementalCase param = GetParam();
  Graph g = grid_graph();
  TreeTemplate tmpl = TreeTemplate::path(7);
  if (param.labeled) {
    assign_random_labels(g, 3, 21);
    tmpl.set_labels({0, 1, 2, 1, 0, 2, 1});
  }
  const CountOptions options = CountOptions::builder()
                                   .iterations(3)
                                   .seed(42)
                                   .table(param.table)
                                   .kernel_family(param.family)
                                   .partition(PartitionStrategy::kBalanced)
                                   .per_vertex(true)
                                   .build();

  RunHandle handle = begin_incremental(g, tmpl, options);
  expect_bit_identical(handle.result(), count_template(g, tmpl, options));
  EXPECT_EQ(handle.recounts(), 0u);
  EXPECT_GT(handle.retained_bytes(), 0u);

  // Several sequential deltas: retained state must stay exactly what a
  // keep-tables full run would have left after EVERY recount, not just
  // the first.
  Xoshiro256 rng(7 + static_cast<std::uint64_t>(param.table));
  for (int round = 0; round < 3; ++round) {
    GraphDelta delta = random_delta(g, 4, 3, rng);
    g.apply(delta);
    const CountResult& incremental = handle.recount(g, delta);
    expect_bit_identical(incremental, count_template(g, tmpl, options));
    EXPECT_EQ(incremental.delta.applied_edges, 7u);
    EXPECT_GT(incremental.delta.dirty_vertices, 0u);
    EXPECT_GT(incremental.delta.stages_recomputed, 0u);
    EXPECT_EQ(handle.graph_version(), g.version());
    ASSERT_TRUE(incremental.report != nullptr);
    EXPECT_TRUE(incremental.report->delta.incremental);
    EXPECT_EQ(incremental.report->delta.recounts,
              static_cast<std::uint64_t>(round) + 1);
  }
  EXPECT_EQ(handle.recounts(), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    AllLayoutsAndFamilies, IncrementalBitIdentity,
    ::testing::Values(
        IncrementalCase{TableKind::kNaive, KernelFamily::kFrontier, false},
        IncrementalCase{TableKind::kCompact, KernelFamily::kFrontier, false},
        IncrementalCase{TableKind::kHash, KernelFamily::kFrontier, false},
        IncrementalCase{TableKind::kSuccinct, KernelFamily::kFrontier,
                        false},
        IncrementalCase{TableKind::kNaive, KernelFamily::kSpmm, false},
        IncrementalCase{TableKind::kCompact, KernelFamily::kSpmm, false},
        IncrementalCase{TableKind::kHash, KernelFamily::kSpmm, false},
        IncrementalCase{TableKind::kSuccinct, KernelFamily::kSpmm, false},
        IncrementalCase{TableKind::kCompact, KernelFamily::kFrontier, true},
        IncrementalCase{TableKind::kHash, KernelFamily::kSpmm, true}));

TEST(Incremental, DeleteOnlyAndInsertOnlyDeltas) {
  Graph g = grid_graph();
  const TreeTemplate tmpl = TreeTemplate::star(5);
  const CountOptions options =
      CountOptions::builder().iterations(2).seed(3).build();
  RunHandle handle = begin_incremental(g, tmpl, options);

  const Edge victim = edge_list(g).front();
  GraphDelta del;
  del.remove(victim.first, victim.second);
  g.apply(del);
  expect_bit_identical(handle.recount(g, del),
                       count_template(g, tmpl, options));

  GraphDelta ins;
  ins.insert(victim.first, victim.second);
  g.apply(ins);
  expect_bit_identical(handle.recount(g, ins),
                       count_template(g, tmpl, options));
}

TEST(Incremental, EmptyDeltaIsANoOpRecount) {
  Graph g = grid_graph();
  const TreeTemplate tmpl = TreeTemplate::path(5);
  const CountOptions options =
      CountOptions::builder().iterations(2).seed(5).build();
  RunHandle handle = begin_incremental(g, tmpl, options);
  const double before = handle.result().estimate;
  GraphDelta empty;
  g.apply(empty);
  const CountResult& after = handle.recount(g, empty);
  EXPECT_EQ(after.estimate, before);
  EXPECT_EQ(after.delta.dirty_vertices, 0u);
}

TEST(Incremental, OptionRestrictionsRejected) {
  const Graph g = grid_graph();
  const TreeTemplate tmpl = TreeTemplate::path(5);

  // count_template refuses the flag outright.
  CountOptions incremental_opts;
  incremental_opts.execution.incremental = true;
  EXPECT_EQ(category_of([&] { count_template(g, tmpl, incremental_opts); }),
            ErrorCategory::kUsage);

  // Incompatible knobs die in validate().
  CountOptions outer;
  outer.execution.mode = ParallelMode::kOuterLoop;
  EXPECT_EQ(category_of([&] { begin_incremental(g, tmpl, outer); }),
            ErrorCategory::kUsage);

  CountOptions reference;
  reference.execution.reference_kernels = true;
  EXPECT_EQ(category_of([&] { begin_incremental(g, tmpl, reference); }),
            ErrorCategory::kUsage);

  CountOptions reordered;
  reordered.execution.reorder = ReorderMode::kDegree;
  EXPECT_EQ(category_of([&] { begin_incremental(g, tmpl, reordered); }),
            ErrorCategory::kUsage);

  CountOptions controlled;
  controlled.run.deadline_seconds = 10.0;
  EXPECT_EQ(category_of([&] { begin_incremental(g, tmpl, controlled); }),
            ErrorCategory::kUsage);
}

TEST(Incremental, VertexCountMismatchRejected) {
  Graph g = grid_graph();
  const TreeTemplate tmpl = TreeTemplate::path(4);
  RunHandle handle = begin_incremental(
      g, tmpl, CountOptions::builder().iterations(1).build());
  const Graph other = largest_component(erdos_renyi_gnm(30, 60, 3));
  EXPECT_EQ(category_of([&] { handle.recount(other, GraphDelta{}); }),
            ErrorCategory::kBadInput);
}

// ---- GraphSource ------------------------------------------------------

TEST(GraphSource, FactoryMatchesLegacySpellings) {
  EdgeList edges{{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  const Graph via_source = GraphSource::from_edges(5, edges).build();
  const Graph via_builder = build_graph(5, edges);
  expect_same_csr(via_source, via_builder);

  const Graph derived = GraphSource::from_edges(edges).build();
  EXPECT_EQ(derived.num_vertices(), 4);

  const Graph dataset =
      GraphSource::from_dataset("celegans").scale(1.0).seed(5).build();
  EXPECT_GT(dataset.num_vertices(), 0);
}

}  // namespace
}  // namespace fascia
