#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "helpers.hpp"

namespace fascia {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(GraphIo, WriteReadRoundTrip) {
  const Graph original = testing::complete_graph(5);
  const std::string path = temp_path("fascia_roundtrip.txt");
  write_edge_list(original, path);
  const Graph loaded = read_edge_list(path);
  EXPECT_EQ(loaded.num_vertices(), original.num_vertices());
  EXPECT_EQ(loaded.num_edges(), original.num_edges());
  EXPECT_EQ(edge_list(loaded), edge_list(original));
  std::remove(path.c_str());
}

TEST(GraphIo, SkipsCommentsAndBlank) {
  const std::string path = temp_path("fascia_comments.txt");
  {
    std::ofstream out(path);
    out << "# SNAP style header\n% matrix-market style\n\n0 1\n1 2\n";
  }
  const Graph g = read_edge_list(path);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  std::remove(path.c_str());
}

TEST(GraphIo, MalformedLineThrows) {
  const std::string path = temp_path("fascia_malformed.txt");
  {
    std::ofstream out(path);
    out << "0 1\nnot numbers here\n";
  }
  EXPECT_THROW(read_edge_list(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list("/no/such/file.txt"), std::runtime_error);
}

TEST(GraphIo, LabelsRoundTrip) {
  Graph g = testing::path_graph(4);
  g.set_labels({2, 0, 1, 2}, 3);
  const std::string path = temp_path("fascia_labels.txt");
  write_labels(g, path);

  Graph fresh = testing::path_graph(4);
  read_labels(fresh, path);
  ASSERT_TRUE(fresh.has_labels());
  EXPECT_EQ(fresh.num_label_values(), 3);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(fresh.label(v), g.label(v));
  std::remove(path.c_str());
}

TEST(GraphIo, WriteLabelsWithoutLabelsThrows) {
  const Graph g = testing::path_graph(3);
  EXPECT_THROW(write_labels(g, temp_path("x.txt")), std::runtime_error);
}

TEST(GraphIo, DuplicateEdgesInFileMerged) {
  const std::string path = temp_path("fascia_dups.txt");
  {
    std::ofstream out(path);
    out << "0 1\n1 0\n0 1\n";
  }
  EXPECT_EQ(read_edge_list(path).num_edges(), 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fascia
