#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "helpers.hpp"
#include "util/error.hpp"

namespace fascia {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(GraphIo, WriteReadRoundTrip) {
  const Graph original = testing::complete_graph(5);
  const std::string path = temp_path("fascia_roundtrip.txt");
  write_edge_list(original, path);
  const Graph loaded = read_edge_list(path);
  EXPECT_EQ(loaded.num_vertices(), original.num_vertices());
  EXPECT_EQ(loaded.num_edges(), original.num_edges());
  EXPECT_EQ(edge_list(loaded), edge_list(original));
  std::remove(path.c_str());
}

TEST(GraphIo, SkipsCommentsAndBlank) {
  const std::string path = temp_path("fascia_comments.txt");
  {
    std::ofstream out(path);
    out << "# SNAP style header\n% matrix-market style\n\n0 1\n1 2\n";
  }
  const Graph g = read_edge_list(path);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  std::remove(path.c_str());
}

TEST(GraphIo, MalformedLineThrows) {
  const std::string path = temp_path("fascia_malformed.txt");
  {
    std::ofstream out(path);
    out << "0 1\nnot numbers here\n";
  }
  EXPECT_THROW(read_edge_list(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list("/no/such/file.txt"), std::runtime_error);
}

TEST(GraphIo, LabelsRoundTrip) {
  Graph g = testing::path_graph(4);
  g.set_labels({2, 0, 1, 2}, 3);
  const std::string path = temp_path("fascia_labels.txt");
  write_labels(g, path);

  Graph fresh = testing::path_graph(4);
  read_labels(fresh, path);
  ASSERT_TRUE(fresh.has_labels());
  EXPECT_EQ(fresh.num_label_values(), 3);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(fresh.label(v), g.label(v));
  std::remove(path.c_str());
}

TEST(GraphIo, WriteLabelsWithoutLabelsThrows) {
  const Graph g = testing::path_graph(3);
  EXPECT_THROW(write_labels(g, temp_path("x.txt")), std::runtime_error);
}

TEST(GraphIo, DuplicateEdgesInFileMerged) {
  const std::string path = temp_path("fascia_dups.txt");
  {
    std::ofstream out(path);
    out << "0 1\n1 0\n0 1\n";
  }
  EXPECT_EQ(read_edge_list(path).num_edges(), 1);
  std::remove(path.c_str());
}


// ---- malformed-input corpus ----------------------------------------------
// Each case is one way a real-world file goes wrong; all must surface
// as fascia::Error (kBadInput) with the file (and line, where known)
// in the message, never as a crash or a silent partial load.

TEST(GraphIoCorpus, CrlfLineEndingsParse) {
  const std::string path = temp_path("fascia_crlf.txt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "# header\r\n0 1\r\n1 2\r\n";
  }
  const Graph g = read_edge_list(path);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  std::remove(path.c_str());
}

TEST(GraphIoCorpus, WhitespaceOnlyLinesSkipped) {
  const std::string path = temp_path("fascia_ws.txt");
  {
    std::ofstream out(path);
    out << "0 1\n   \n\t\n1 2\n";
  }
  EXPECT_EQ(read_edge_list(path).num_edges(), 2);
  std::remove(path.c_str());
}

TEST(GraphIoCorpus, EmptyFileIsBadInput) {
  const std::string path = temp_path("fascia_empty.txt");
  { std::ofstream out(path); }
  try {
    read_edge_list(path);
    FAIL() << "expected fascia::Error";
  } catch (const Error& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kBadInput);
  }
  std::remove(path.c_str());
}

TEST(GraphIoCorpus, TruncatedLineReportsFileAndLine) {
  const std::string path = temp_path("fascia_trunc.txt");
  {
    std::ofstream out(path);
    out << "0 1\n1 2\n3\n";  // line 3 lost its second endpoint
  }
  try {
    read_edge_list(path);
    FAIL() << "expected fascia::Error";
  } catch (const Error& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kBadInput);
    EXPECT_EQ(error.context(), path + ":3");
    EXPECT_NE(std::string(error.what()).find(":3"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(GraphIoCorpus, OutOfRangeIdIsBadInput) {
  const std::string path = temp_path("fascia_range.txt");
  {
    std::ofstream out(path);
    out << "0 1\n0 99999999999\n";
  }
  try {
    read_edge_list(path);
    FAIL() << "expected fascia::Error";
  } catch (const Error& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kBadInput);
    EXPECT_EQ(error.context(), path + ":2");
  }
  std::remove(path.c_str());
}

TEST(GraphIoCorpus, GarbageLabelReportsFileAndLine) {
  Graph g = testing::path_graph(3);
  const std::string path = temp_path("fascia_garbage_labels.txt");
  {
    std::ofstream out(path);
    out << "0\nnot-a-label\n1\n";
  }
  try {
    read_labels(g, path);
    FAIL() << "expected fascia::Error";
  } catch (const Error& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kBadInput);
    EXPECT_EQ(error.context(), path + ":2");
  }
  std::remove(path.c_str());
}

TEST(GraphIoCorpus, TrailingGarbageAfterLabelRejected) {
  Graph g = testing::path_graph(2);
  const std::string path = temp_path("fascia_label_trail.txt");
  {
    std::ofstream out(path);
    out << "0\n3x\n";
  }
  EXPECT_THROW(read_labels(g, path), Error);
  std::remove(path.c_str());
}

TEST(GraphIoCorpus, LabelOutOfRangeRejected) {
  Graph g = testing::path_graph(2);
  const std::string path = temp_path("fascia_label_range.txt");
  {
    std::ofstream out(path);
    out << "0\n255\n";
  }
  EXPECT_THROW(read_labels(g, path), Error);
  std::remove(path.c_str());
}

TEST(GraphIoCorpus, LabelCountMismatchRejected) {
  Graph g = testing::path_graph(4);
  const std::string path = temp_path("fascia_label_count.txt");
  {
    std::ofstream out(path);
    out << "0\n1\n2\n";  // 3 labels for 4 vertices
  }
  try {
    read_labels(g, path);
    FAIL() << "expected fascia::Error";
  } catch (const Error& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kBadInput);
    EXPECT_NE(std::string(error.what()).find("3 labels for 4"),
              std::string::npos);
  }
  EXPECT_FALSE(g.has_labels());
  std::remove(path.c_str());
}

TEST(GraphIoCorpus, LabelsWithCrlfAndBlanksParse) {
  Graph g = testing::path_graph(3);
  const std::string path = temp_path("fascia_label_crlf.txt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "# labels\r\n1\r\n\r\n0\r\n2\r\n";
  }
  read_labels(g, path);
  ASSERT_TRUE(g.has_labels());
  EXPECT_EQ(g.label(0), 1);
  EXPECT_EQ(g.label(1), 0);
  EXPECT_EQ(g.label(2), 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fascia
