#include <gtest/gtest.h>

#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "dp/table_compact.hpp"
#include "dp/table_hash.hpp"
#include "dp/table_naive.hpp"
#include "util/mem_tracker.hpp"

namespace fascia {
namespace {

// Typed test: the three layouts share one behavioural contract.
template <class T>
class TableContract : public ::testing::Test {};

using TableKinds = ::testing::Types<NaiveTable, CompactTable, HashTable>;
TYPED_TEST_SUITE(TableContract, TableKinds);

TYPED_TEST(TableContract, FreshTableReadsZero) {
  TypeParam table(10, 6);
  for (VertexId v = 0; v < 10; ++v) {
    for (ColorsetIndex c = 0; c < 6; ++c) {
      EXPECT_DOUBLE_EQ(table.get(v, c), 0.0);
    }
  }
  EXPECT_DOUBLE_EQ(table.total(), 0.0);
}

TYPED_TEST(TableContract, CommitThenReadBack) {
  TypeParam table(5, 4);
  const std::vector<double> row = {1.0, 0.0, 2.5, 0.0};
  table.commit_row(3, row);
  EXPECT_DOUBLE_EQ(table.get(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(table.get(3, 1), 0.0);
  EXPECT_DOUBLE_EQ(table.get(3, 2), 2.5);
  EXPECT_DOUBLE_EQ(table.get(2, 0), 0.0);
  EXPECT_TRUE(table.has_vertex(3));
}

TYPED_TEST(TableContract, TotalsAndVertexTotals) {
  TypeParam table(4, 3);
  table.commit_row(0, std::vector<double>{1.0, 2.0, 0.0});
  table.commit_row(2, std::vector<double>{0.0, 0.0, 4.0});
  EXPECT_DOUBLE_EQ(table.total(), 7.0);
  EXPECT_DOUBLE_EQ(table.vertex_total(0), 3.0);
  EXPECT_DOUBLE_EQ(table.vertex_total(1), 0.0);
  EXPECT_DOUBLE_EQ(table.vertex_total(2), 4.0);
}

TYPED_TEST(TableContract, NumColorsetsReported) {
  TypeParam table(3, 17);
  EXPECT_EQ(table.num_colorsets(), 17u);
}

TYPED_TEST(TableContract, BytesNonZero) {
  TypeParam table(100, 10);
  table.commit_row(0, std::vector<double>(10, 1.0));
  EXPECT_GT(table.bytes(), 0u);
}

TYPED_TEST(TableContract, MemTrackerBalanced) {
  MemTracker::reset_all();
  {
    TypeParam table(50, 8);
    table.commit_row(1, std::vector<double>(8, 1.0));
    EXPECT_GT(MemTracker::current(), 0u);
  }
  EXPECT_EQ(MemTracker::current(), 0u);
}

TYPED_TEST(TableContract, ConcurrentCommitsDistinctVertices) {
  constexpr VertexId kN = 500;
  TypeParam table(kN, 5);
#ifdef _OPENMP
#pragma omp parallel for
#endif
  for (VertexId v = 0; v < kN; ++v) {
    std::vector<double> row(5, static_cast<double>(v + 1));
    table.commit_row(v, row);
  }
  for (VertexId v = 0; v < kN; ++v) {
    EXPECT_DOUBLE_EQ(table.get(v, 3), static_cast<double>(v + 1));
  }
}

// ---- row-borrow contract (vectorized kernels) ---------------------------
// kContiguousRows == true promises: row_ptr(v) is non-null whenever
// has_vertex(v), and the returned row reads element-for-element like
// get(v, .).  kContiguousRows == false promises row_ptr always null,
// so kernels fall back to get().

TYPED_TEST(TableContract, RowBorrowMatchesGet) {
  TypeParam table(6, 4);
  table.commit_row(2, std::vector<double>{1.0, 0.0, 3.0, 4.0});
  table.commit_row(4, std::vector<double>{0.0, 2.0, 0.0, 0.0});
  for (VertexId v = 0; v < 6; ++v) {
    const double* row = table.row_ptr(v);
    if constexpr (TypeParam::kContiguousRows) {
      if (table.has_vertex(v)) {
        ASSERT_NE(row, nullptr);
        for (ColorsetIndex c = 0; c < 4; ++c) {
          EXPECT_DOUBLE_EQ(row[c], table.get(v, c));
        }
      }
    } else {
      EXPECT_EQ(row, nullptr);
    }
  }
}

TEST(NaiveTable, RowPtrNeverNull) {
  static_assert(NaiveTable::kContiguousRows);
  NaiveTable table(3, 2);
  // Dense layout: every vertex has a row, committed or not.
  for (VertexId v = 0; v < 3; ++v) {
    ASSERT_NE(table.row_ptr(v), nullptr);
    EXPECT_DOUBLE_EQ(table.row_ptr(v)[0], 0.0);
  }
}

TEST(CompactTable, RowPtrNullMirrorsHasVertex) {
  static_assert(CompactTable::kContiguousRows);
  CompactTable table(4, 3);
  table.commit_row(1, std::vector<double>{0.0, 0.0, 0.0});  // rejected
  table.commit_row(2, std::vector<double>{0.0, 1.0, 0.0});
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(table.row_ptr(v) != nullptr, table.has_vertex(v));
  }
}

TEST(HashTable, RowPtrAlwaysNull) {
  static_assert(!HashTable::kContiguousRows);
  HashTable table(3, 2);
  table.commit_row(1, std::vector<double>{5.0, 6.0});
  EXPECT_EQ(table.row_ptr(1), nullptr);
}

// ---- layout-specific behaviour -----------------------------------------

TEST(NaiveTable, HasVertexAlwaysTrue) {
  NaiveTable table(4, 2);
  EXPECT_TRUE(table.has_vertex(0));  // no skip optimization by design
}

TEST(CompactTable, EmptyRowNotAllocated) {
  CompactTable table(4, 3);
  table.commit_row(1, std::vector<double>{0.0, 0.0, 0.0});
  EXPECT_FALSE(table.has_vertex(1));
  EXPECT_EQ(table.num_active_vertices(), 0);
  table.commit_row(2, std::vector<double>{0.0, 1.0, 0.0});
  EXPECT_EQ(table.num_active_vertices(), 1);
}

TEST(CompactTable, UsesLessMemoryThanNaiveWhenSparse) {
  MemTracker::reset_all();
  std::size_t naive_bytes = 0, compact_bytes = 0;
  {
    NaiveTable naive(10000, 100);
    naive_bytes = naive.bytes();
  }
  {
    CompactTable compact(10000, 100);
    compact.commit_row(5, std::vector<double>(100, 1.0));
    compact_bytes = compact.bytes();
  }
  EXPECT_LT(compact_bytes, naive_bytes / 10);
}

TEST(HashTable, GrowsPastInitialCapacity) {
  HashTable table(5000, 4);
  std::vector<double> row = {1.0, 2.0, 3.0, 4.0};
  for (VertexId v = 0; v < 5000; ++v) table.commit_row(v, row);
  EXPECT_EQ(table.num_entries(), 20000u);
  for (VertexId v = 0; v < 5000; ++v) {
    ASSERT_DOUBLE_EQ(table.get(v, 2), 3.0);
  }
}

TEST(HashTable, SparseFootprintBeatsDense) {
  // One active vertex among many: the paper's high-selectivity regime
  // (Fig. 7).  Compare against the dense layout's *computed* footprint
  // rather than allocating gigabytes in a unit test.
  HashTable hash(1 << 20, 924);
  hash.commit_row(12345, std::vector<double>(924, 1.0));
  const std::size_t dense_bytes =
      std::size_t{1 << 20} * 924 * sizeof(double);
  EXPECT_LT(hash.bytes(), dense_bytes / 100);
}

TEST(HashTable, OverwriteSameKey) {
  HashTable table(3, 2);
  table.commit_row(1, std::vector<double>{5.0, 0.0});
  table.commit_row(1, std::vector<double>{7.0, 1.0});
  EXPECT_DOUBLE_EQ(table.get(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(table.get(1, 1), 1.0);
}

}  // namespace
}  // namespace fascia
