#include <gtest/gtest.h>

#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "dp/table_compact.hpp"
#include "dp/table_hash.hpp"
#include "dp/table_naive.hpp"
#include "dp/table_succinct.hpp"
#include "util/mem_tracker.hpp"

namespace fascia {
namespace {

// Typed test: the three layouts share one behavioural contract.
template <class T>
class TableContract : public ::testing::Test {};

using TableKinds =
    ::testing::Types<NaiveTable, CompactTable, HashTable, SuccinctTable>;
TYPED_TEST_SUITE(TableContract, TableKinds);

TYPED_TEST(TableContract, FreshTableReadsZero) {
  TypeParam table(10, 6);
  for (VertexId v = 0; v < 10; ++v) {
    for (ColorsetIndex c = 0; c < 6; ++c) {
      EXPECT_DOUBLE_EQ(table.get(v, c), 0.0);
    }
  }
  EXPECT_DOUBLE_EQ(table.total(), 0.0);
}

TYPED_TEST(TableContract, CommitThenReadBack) {
  TypeParam table(5, 4);
  const std::vector<double> row = {1.0, 0.0, 2.5, 0.0};
  table.commit_row(3, row);
  EXPECT_DOUBLE_EQ(table.get(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(table.get(3, 1), 0.0);
  EXPECT_DOUBLE_EQ(table.get(3, 2), 2.5);
  EXPECT_DOUBLE_EQ(table.get(2, 0), 0.0);
  EXPECT_TRUE(table.has_vertex(3));
}

TYPED_TEST(TableContract, TotalsAndVertexTotals) {
  TypeParam table(4, 3);
  table.commit_row(0, std::vector<double>{1.0, 2.0, 0.0});
  table.commit_row(2, std::vector<double>{0.0, 0.0, 4.0});
  EXPECT_DOUBLE_EQ(table.total(), 7.0);
  EXPECT_DOUBLE_EQ(table.vertex_total(0), 3.0);
  EXPECT_DOUBLE_EQ(table.vertex_total(1), 0.0);
  EXPECT_DOUBLE_EQ(table.vertex_total(2), 4.0);
}

TYPED_TEST(TableContract, NumColorsetsReported) {
  TypeParam table(3, 17);
  EXPECT_EQ(table.num_colorsets(), 17u);
}

TYPED_TEST(TableContract, BytesNonZero) {
  TypeParam table(100, 10);
  table.commit_row(0, std::vector<double>(10, 1.0));
  EXPECT_GT(table.bytes(), 0u);
}

TYPED_TEST(TableContract, MemTrackerBalanced) {
  MemTracker::reset_all();
  {
    TypeParam table(50, 8);
    table.commit_row(1, std::vector<double>(8, 1.0));
    EXPECT_GT(MemTracker::current(), 0u);
  }
  EXPECT_EQ(MemTracker::current(), 0u);
}

TYPED_TEST(TableContract, ConcurrentCommitsDistinctVertices) {
  constexpr VertexId kN = 500;
  TypeParam table(kN, 5);
#ifdef _OPENMP
#pragma omp parallel for
#endif
  for (VertexId v = 0; v < kN; ++v) {
    std::vector<double> row(5, static_cast<double>(v + 1));
    table.commit_row(v, row);
  }
  for (VertexId v = 0; v < kN; ++v) {
    EXPECT_DOUBLE_EQ(table.get(v, 3), static_cast<double>(v + 1));
  }
}

// ---- row-borrow contract (vectorized kernels) ---------------------------
// kContiguousRows == true promises: row_ptr(v) is non-null whenever
// has_vertex(v), and the returned row reads element-for-element like
// get(v, .).  kContiguousRows == false promises row_ptr always null,
// so kernels fall back to get().

TYPED_TEST(TableContract, RowBorrowMatchesGet) {
  TypeParam table(6, 4);
  table.commit_row(2, std::vector<double>{1.0, 0.0, 3.0, 4.0});
  table.commit_row(4, std::vector<double>{0.0, 2.0, 0.0, 0.0});
  for (VertexId v = 0; v < 6; ++v) {
    const double* row = table.row_ptr(v);
    if constexpr (TypeParam::kContiguousRows) {
      if (table.has_vertex(v)) {
        ASSERT_NE(row, nullptr);
        for (ColorsetIndex c = 0; c < 4; ++c) {
          EXPECT_DOUBLE_EQ(row[c], table.get(v, c));
        }
      }
    } else {
      EXPECT_EQ(row, nullptr);
    }
  }
}

// ---- blocked row export (SpMM multivector build) -------------------------
// export_row_block(v, begin, count, out) must fill exactly `count`
// doubles reading element-for-element like get(v, begin + .), with
// exact zeros for absent rows and absent columns, for every layout
// and any block partition of the colorset axis — the SpmmMultivector
// (core/spmm_kernels.hpp) leans on this to build bit-identical slabs.

TYPED_TEST(TableContract, ExportRowBlockMatchesGet) {
  constexpr std::uint32_t kWidth = 11;
  TypeParam table(6, kWidth);
  // Mixed density: v1 interleaves zeros (succinct may pick either
  // mode), v4 is fully dense (bitmap mode), v5 is one-hot (sorted
  // slots), v0/v2/v3 never committed.
  table.commit_row(1, std::vector<double>{3, 0, 0, 7, 0, 1, 0, 0, 9, 0, 2});
  table.commit_row(4, std::vector<double>(kWidth, 5.0));
  table.commit_row(5, std::vector<double>{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 4});
  for (VertexId v = 0; v < 6; ++v) {
    for (std::uint32_t count : {1u, 3u, 4u, kWidth}) {
      for (std::uint32_t begin = 0; begin + count <= kWidth; begin += count) {
        std::vector<double> out(count, -1.0);  // poison: exports must overwrite
        table.export_row_block(v, begin, count, out.data());
        for (std::uint32_t c = 0; c < count; ++c) {
          EXPECT_DOUBLE_EQ(out[c], table.get(v, begin + c))
              << "v=" << v << " begin=" << begin << " count=" << count;
        }
      }
    }
  }
}

TEST(NaiveTable, RowPtrNeverNull) {
  static_assert(NaiveTable::kContiguousRows);
  NaiveTable table(3, 2);
  // Dense layout: every vertex has a row, committed or not.
  for (VertexId v = 0; v < 3; ++v) {
    ASSERT_NE(table.row_ptr(v), nullptr);
    EXPECT_DOUBLE_EQ(table.row_ptr(v)[0], 0.0);
  }
}

TEST(CompactTable, RowPtrNullMirrorsHasVertex) {
  static_assert(CompactTable::kContiguousRows);
  CompactTable table(4, 3);
  table.commit_row(1, std::vector<double>{0.0, 0.0, 0.0});  // rejected
  table.commit_row(2, std::vector<double>{0.0, 1.0, 0.0});
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(table.row_ptr(v) != nullptr, table.has_vertex(v));
  }
}

TEST(HashTable, RowPtrAlwaysNull) {
  static_assert(!HashTable::kContiguousRows);
  HashTable table(3, 2);
  table.commit_row(1, std::vector<double>{5.0, 6.0});
  EXPECT_EQ(table.row_ptr(1), nullptr);
}

// ---- layout-specific behaviour -----------------------------------------

TEST(NaiveTable, HasVertexAlwaysTrue) {
  NaiveTable table(4, 2);
  EXPECT_TRUE(table.has_vertex(0));  // no skip optimization by design
}

TEST(CompactTable, EmptyRowNotAllocated) {
  CompactTable table(4, 3);
  table.commit_row(1, std::vector<double>{0.0, 0.0, 0.0});
  EXPECT_FALSE(table.has_vertex(1));
  EXPECT_EQ(table.num_active_vertices(), 0);
  table.commit_row(2, std::vector<double>{0.0, 1.0, 0.0});
  EXPECT_EQ(table.num_active_vertices(), 1);
}

TEST(CompactTable, UsesLessMemoryThanNaiveWhenSparse) {
  MemTracker::reset_all();
  std::size_t naive_bytes = 0, compact_bytes = 0;
  {
    NaiveTable naive(10000, 100);
    naive_bytes = naive.bytes();
  }
  {
    CompactTable compact(10000, 100);
    compact.commit_row(5, std::vector<double>(100, 1.0));
    compact_bytes = compact.bytes();
  }
  EXPECT_LT(compact_bytes, naive_bytes / 10);
}

TEST(HashTable, GrowsPastInitialCapacity) {
  HashTable table(5000, 4);
  std::vector<double> row = {1.0, 2.0, 3.0, 4.0};
  for (VertexId v = 0; v < 5000; ++v) table.commit_row(v, row);
  EXPECT_EQ(table.num_entries(), 20000u);
  for (VertexId v = 0; v < 5000; ++v) {
    ASSERT_DOUBLE_EQ(table.get(v, 2), 3.0);
  }
}

TEST(HashTable, SparseFootprintBeatsDense) {
  // One active vertex among many: the paper's high-selectivity regime
  // (Fig. 7).  Compare against the dense layout's *computed* footprint
  // rather than allocating gigabytes in a unit test.
  HashTable hash(1 << 20, 924);
  hash.commit_row(12345, std::vector<double>(924, 1.0));
  const std::size_t dense_bytes =
      std::size_t{1 << 20} * 924 * sizeof(double);
  EXPECT_LT(hash.bytes(), dense_bytes / 100);
}

TEST(HashTable, OverwriteSameKey) {
  HashTable table(3, 2);
  table.commit_row(1, std::vector<double>{5.0, 0.0});
  table.commit_row(1, std::vector<double>{7.0, 1.0});
  EXPECT_DOUBLE_EQ(table.get(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(table.get(1, 1), 1.0);
}

// ---- succinct layout ----------------------------------------------------

TEST(SuccinctTable, EmptyRowNotAllocated) {
  SuccinctTable table(4, 3);
  table.commit_row(1, std::vector<double>{0.0, 0.0, 0.0});
  EXPECT_FALSE(table.has_vertex(1));
  EXPECT_EQ(table.num_active_vertices(), 0);
  table.commit_row(2, std::vector<double>{0.0, 1.0, 0.0});
  EXPECT_EQ(table.num_active_vertices(), 1);
}

TEST(SuccinctTable, DensityPicksBitmapOrSortedSlots) {
  // 256 colorsets: the bitmap header is 4 words + 2 rank words = 6
  // words per row, a sorted-slot row is ~1.5 words per nonzero — so a
  // dense row must choose the bitmap and a 1-nonzero row the slots.
  constexpr std::uint32_t kWidth = 256;
  SuccinctTable table(4, kWidth);
  std::vector<double> dense(kWidth, 2.0);
  table.commit_row(0, dense);
  std::vector<double> sparse(kWidth, 0.0);
  sparse[200] = 7.0;
  table.commit_row(1, sparse);
  EXPECT_EQ(table.num_bitmap_rows(), 1u);
  EXPECT_EQ(table.num_sparse_rows(), 1u);
  for (ColorsetIndex c = 0; c < kWidth; ++c) {
    EXPECT_DOUBLE_EQ(table.get(0, c), 2.0);
    EXPECT_DOUBLE_EQ(table.get(1, c), c == 200 ? 7.0 : 0.0);
  }
}

TEST(SuccinctTable, DecodeRowRoundTripsBothModes) {
  // Width > 64 exercises the multi-word bitmap paths, including the
  // all-ones fast path for word 0 of the dense row.
  constexpr std::uint32_t kWidth = 100;
  SuccinctTable table(3, kWidth);
  std::vector<double> dense(kWidth);
  for (std::uint32_t c = 0; c < kWidth; ++c) {
    dense[c] = c % 7 == 3 ? 0.0 : static_cast<double>(c + 1);
  }
  std::vector<double> mostly_full(kWidth, 1.0);
  mostly_full[70] = 0.0;  // word 0 stays all-ones, word 1 does not
  std::vector<double> sparse(kWidth, 0.0);
  sparse[3] = 5.0;
  sparse[64] = 6.0;
  table.commit_row(0, dense);
  table.commit_row(1, mostly_full);
  table.commit_row(2, sparse);
  std::vector<double> out(kWidth, -1.0);
  for (VertexId v = 0; v < 3; ++v) {
    const std::vector<double>& expect =
        v == 0 ? dense : (v == 1 ? mostly_full : sparse);
    table.decode_row(v, out.data());
    EXPECT_EQ(out, expect) << "vertex " << v;
  }
}

TEST(SuccinctTable, AddRowIntoAccumulates) {
  constexpr std::uint32_t kWidth = 80;
  SuccinctTable table(2, kWidth);
  std::vector<double> a(kWidth, 1.0);  // word 0 all-ones fast path
  std::vector<double> b(kWidth, 0.0);
  b[10] = 3.0;
  b[79] = 4.0;
  table.commit_row(0, a);
  table.commit_row(1, b);
  std::vector<double> acc(kWidth, 1.0);
  table.add_row_into(0, acc.data());
  table.add_row_into(1, acc.data());
  for (std::uint32_t c = 0; c < kWidth; ++c) {
    double expect = 2.0;
    if (c == 10) expect += 3.0;
    if (c == 79) expect += 4.0;
    EXPECT_DOUBLE_EQ(acc[c], expect) << "slot " << c;
  }
}

TEST(SuccinctTable, ForEachNonzeroAscendingSlots) {
  SuccinctTable table(1, 130);
  std::vector<double> row(130, 0.0);
  row[0] = 1.0;
  row[63] = 2.0;
  row[64] = 3.0;
  row[129] = 4.0;
  table.commit_row(0, row);
  std::vector<std::pair<ColorsetIndex, double>> seen;
  table.for_each_nonzero(0, [&](ColorsetIndex idx, double value) {
    seen.emplace_back(idx, value);
  });
  const std::vector<std::pair<ColorsetIndex, double>> expect = {
      {0, 1.0}, {63, 2.0}, {64, 3.0}, {129, 4.0}};
  EXPECT_EQ(seen, expect);
}

TEST(SuccinctTable, RecommitReplacesRow) {
  // The restore path (checkpoint / spill page-in) re-commits rows;
  // the old blob strands in its slab but readers must see only the
  // new encoding, across a mode flip.
  constexpr std::uint32_t kWidth = 256;
  SuccinctTable table(2, kWidth);
  table.commit_row(0, std::vector<double>(kWidth, 1.0));  // bitmap
  EXPECT_EQ(table.num_bitmap_rows(), 1u);
  std::vector<double> sparse(kWidth, 0.0);
  sparse[17] = 9.0;
  table.commit_row(0, sparse);  // flips to sorted slots
  EXPECT_EQ(table.num_bitmap_rows(), 0u);
  EXPECT_EQ(table.num_sparse_rows(), 1u);
  for (ColorsetIndex c = 0; c < kWidth; ++c) {
    EXPECT_DOUBLE_EQ(table.get(0, c), c == 17 ? 9.0 : 0.0);
  }
  EXPECT_DOUBLE_EQ(table.vertex_total(0), 9.0);
}

TEST(SuccinctTable, SparseFootprintBeatsCompact) {
  // Fig. 7's regime: the whole point of the layout.  Compact pays the
  // full row width per active vertex; succinct pays ~12 B per nonzero
  // (plus slab slack bounded by one geometric growth step).
  constexpr VertexId kN = 20000;
  constexpr std::uint32_t kWidth = 924;  // C(12,6): the k = 12 midpoint
  SuccinctTable succinct(kN, kWidth);
  CompactTable compact(kN, kWidth);
  std::vector<double> row(kWidth, 0.0);
  for (std::uint32_t c = 0; c < kWidth; c += 16) row[c] = 1.0;
  for (VertexId v = 0; v < kN; ++v) {
    succinct.commit_row(v, row);
    compact.commit_row(v, row);
  }
  EXPECT_LT(succinct.bytes(), compact.bytes() / 4);
  EXPECT_DOUBLE_EQ(succinct.total(), compact.total());
}

TEST(SuccinctTable, BytesCoverSlabsAndMemTrackerBalances) {
  MemTracker::reset_all();
  const std::size_t before = MemTracker::current();
  {
    SuccinctTable table(1000, 64);
    std::vector<double> row(64, 1.0);
    for (VertexId v = 0; v < 1000; ++v) table.commit_row(v, row);
    // bytes() reports slab *capacity* (the allocation), never less
    // than the handed-out blobs: 1000 rows x (1 header + 1 bitmap +
    // 1 rank + 64 values) words, plus the row-pointer array.
    const std::size_t floor_bytes =
        1000 * sizeof(std::uint64_t*) + 1000 * 67 * sizeof(std::uint64_t);
    EXPECT_GE(table.bytes(), floor_bytes);
    EXPECT_EQ(MemTracker::current() - before, table.bytes());
  }
  EXPECT_EQ(MemTracker::current(), before);
}

}  // namespace
}  // namespace fascia
