#include "comb/split_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

namespace fascia {
namespace {

struct SplitParam {
  int k;
  int h;
  int a;
};

class SplitTableProperty : public ::testing::TestWithParam<SplitParam> {};

TEST_P(SplitTableProperty, EverySplitIsDisjointUnionOfParent) {
  const auto [k, h, a] = GetParam();
  const SplitTable table(k, h, a);
  EXPECT_EQ(table.num_parents(), num_colorsets(k, h));
  EXPECT_EQ(table.splits_per_parent(), num_colorsets(h, a));

  for (ColorsetIndex parent = 0; parent < table.num_parents(); ++parent) {
    const auto parent_colors = colorset_colors(parent, h);
    const auto actives = table.active_indices(parent);
    const auto passives = table.passive_indices(parent);
    ASSERT_EQ(actives.size(), passives.size());
    std::set<std::pair<ColorsetIndex, ColorsetIndex>> unique;
    for (std::size_t s = 0; s < actives.size(); ++s) {
      const auto act = colorset_colors(actives[s], a);
      const auto pas = colorset_colors(passives[s], h - a);
      // Disjoint union == parent.
      std::vector<int> merged;
      std::merge(act.begin(), act.end(), pas.begin(), pas.end(),
                 std::back_inserter(merged));
      ASSERT_EQ(merged, parent_colors);
      EXPECT_TRUE(unique.emplace(actives[s], passives[s]).second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SplitTableProperty,
    ::testing::Values(SplitParam{3, 2, 1}, SplitParam{5, 3, 1},
                      SplitParam{5, 4, 2}, SplitParam{7, 5, 2},
                      SplitParam{7, 7, 3}, SplitParam{10, 6, 3},
                      SplitParam{12, 5, 2}));

TEST_P(SplitTableProperty, ParentMajorViewMatchesPerParentSpans) {
  const auto [k, h, a] = GetParam();
  const SplitTable table(k, h, a);
  const auto all_act = table.all_actives();
  const auto all_pas = table.all_passives();
  ASSERT_EQ(table.flat_size(),
            static_cast<std::size_t>(table.num_parents()) *
                table.splits_per_parent());
  ASSERT_EQ(all_act.size(), table.flat_size());
  ASSERT_EQ(all_pas.size(), table.flat_size());
  for (ColorsetIndex parent = 0; parent < table.num_parents(); ++parent) {
    const auto actives = table.active_indices(parent);
    const auto passives = table.passive_indices(parent);
    const std::size_t base =
        static_cast<std::size_t>(parent) * table.splits_per_parent();
    for (std::size_t s = 0; s < actives.size(); ++s) {
      EXPECT_EQ(all_act[base + s], actives[s]);
      EXPECT_EQ(all_pas[base + s], passives[s]);
    }
  }
}

TEST_P(SplitTableProperty, ActiveGroupedViewCoversAllSplits) {
  const auto [k, h, a] = GetParam();
  const SplitTable table(k, h, a);
  EXPECT_EQ(table.num_actives(), num_colorsets(k, a));
  EXPECT_EQ(table.per_active(), num_colorsets(k - a, h - a));

  // Collect the ground-truth (active, parent, passive) triples from
  // the per-parent view.
  std::set<std::tuple<ColorsetIndex, ColorsetIndex, ColorsetIndex>> expected;
  for (ColorsetIndex parent = 0; parent < table.num_parents(); ++parent) {
    const auto actives = table.active_indices(parent);
    const auto passives = table.passive_indices(parent);
    for (std::size_t s = 0; s < actives.size(); ++s) {
      expected.emplace(actives[s], parent, passives[s]);
    }
  }

  std::set<std::tuple<ColorsetIndex, ColorsetIndex, ColorsetIndex>> grouped;
  for (ColorsetIndex act = 0; act < table.num_actives(); ++act) {
    const auto parents = table.group_parents(act);
    const auto passives = table.group_passives(act);
    ASSERT_EQ(parents.size(), table.per_active());
    ASSERT_EQ(passives.size(), table.per_active());
    std::set<ColorsetIndex> parents_seen;
    for (std::size_t s = 0; s < parents.size(); ++s) {
      // Passives ascend within a group (monotone gather) ...
      if (s > 0) EXPECT_LT(passives[s - 1], passives[s]);
      // ... and parents are distinct (conflict-free scatter).
      EXPECT_TRUE(parents_seen.insert(parents[s]).second);
      grouped.emplace(act, parents[s], passives[s]);
    }
  }
  EXPECT_EQ(grouped, expected);
}

TEST(SplitTable, RejectsBadShapes) {
  EXPECT_THROW(SplitTable(5, 3, 0), std::invalid_argument);
  EXPECT_THROW(SplitTable(5, 3, 3), std::invalid_argument);
  EXPECT_THROW(SplitTable(5, 6, 2), std::invalid_argument);
}

TEST(SplitTable, BytesPositive) {
  EXPECT_GT(SplitTable(7, 4, 2).bytes(), 0u);
}

class SingleActiveProperty : public ::testing::TestWithParam<SplitParam> {};

TEST_P(SingleActiveProperty, EntriesAreParentMinusColor) {
  const auto [k, h, a_unused] = GetParam();
  (void)a_unused;
  const SingleActiveSplit split(k, h);
  for (int c = 0; c < k; ++c) {
    const auto entries = split.entries(c);
    EXPECT_EQ(entries.size(),
              static_cast<std::size_t>(num_colorsets(k - 1, h - 1)));
    std::set<ColorsetIndex> parents_seen;
    for (const auto& entry : entries) {
      const auto parent_colors = colorset_colors(entry.parent, h);
      const auto passive_colors = colorset_colors(entry.passive, h - 1);
      // Parent = passive + {c}.
      EXPECT_TRUE(std::binary_search(parent_colors.begin(),
                                     parent_colors.end(), c));
      std::vector<int> expected = passive_colors;
      expected.insert(std::upper_bound(expected.begin(), expected.end(), c),
                      c);
      EXPECT_EQ(expected, parent_colors);
      EXPECT_TRUE(parents_seen.insert(entry.parent).second);
    }
  }
}

TEST_P(SingleActiveProperty, EveryParentContainingColorAppears) {
  const auto [k, h, a_unused] = GetParam();
  (void)a_unused;
  const SingleActiveSplit split(k, h);
  for (int c = 0; c < k; ++c) {
    std::set<ColorsetIndex> covered;
    for (const auto& entry : split.entries(c)) covered.insert(entry.parent);
    for (ColorsetIndex parent = 0; parent < num_colorsets(k, h); ++parent) {
      EXPECT_EQ(covered.count(parent) > 0, colorset_contains(parent, h, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SingleActiveProperty,
    ::testing::Values(SplitParam{3, 2, 0}, SplitParam{5, 3, 0},
                      SplitParam{7, 4, 0}, SplitParam{10, 7, 0},
                      SplitParam{12, 12, 0}));

TEST_P(SingleActiveProperty, SoaViewMirrorsEntries) {
  const auto [k, h, a_unused] = GetParam();
  (void)a_unused;
  const SingleActiveSplit split(k, h);
  for (int c = 0; c < k; ++c) {
    const auto entries = split.entries(c);
    const auto passives = split.passives(c);
    const auto parents = split.parents(c);
    ASSERT_EQ(passives.size(), entries.size());
    ASSERT_EQ(parents.size(), entries.size());
    for (std::size_t s = 0; s < entries.size(); ++s) {
      EXPECT_EQ(passives[s], entries[s].passive);
      EXPECT_EQ(parents[s], entries[s].parent);
    }
  }
}

TEST(SingleActiveSplit, RejectsBadShapes) {
  EXPECT_THROW(SingleActiveSplit(5, 1), std::invalid_argument);
  EXPECT_THROW(SingleActiveSplit(5, 6), std::invalid_argument);
}

}  // namespace
}  // namespace fascia
