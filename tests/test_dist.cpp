#include "dist/partition_sim.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "comb/binomial.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "treelet/catalog.hpp"

namespace fascia::dist {
namespace {

TEST(VertexPartition, CoversAllVerticesWithValidOwners) {
  for (auto scheme : {PartitionScheme::kBlock, PartitionScheme::kHash}) {
    const auto owner = partition_vertices(1000, 7, scheme, 3);
    ASSERT_EQ(owner.size(), 1000u);
    for (int rank : owner) {
      EXPECT_GE(rank, 0);
      EXPECT_LT(rank, 7);
    }
  }
}

TEST(VertexPartition, BlockIsContiguousAndBalanced) {
  const auto owner = partition_vertices(100, 4, PartitionScheme::kBlock);
  EXPECT_TRUE(std::is_sorted(owner.begin(), owner.end()));
  std::vector<int> counts(4, 0);
  for (int rank : owner) ++counts[static_cast<std::size_t>(rank)];
  for (int count : counts) EXPECT_EQ(count, 25);
}

TEST(VertexPartition, HashRoughlyBalanced) {
  const auto owner = partition_vertices(8000, 8, PartitionScheme::kHash, 5);
  std::vector<int> counts(8, 0);
  for (int rank : owner) ++counts[static_cast<std::size_t>(rank)];
  for (int count : counts) EXPECT_NEAR(count, 1000, 150);
}

TEST(VertexPartition, SingleRankOwnsEverything) {
  const auto owner = partition_vertices(50, 1, PartitionScheme::kBlock);
  for (int rank : owner) EXPECT_EQ(rank, 0);
}

TEST(VertexPartition, Validation) {
  EXPECT_THROW(partition_vertices(10, 0, PartitionScheme::kBlock),
               std::invalid_argument);
}

TEST(DistSim, SingleRankHasNoCommunication) {
  const Graph g = testing::complete_graph(20);
  const auto result = simulate_distributed_dp(
      g, TreeTemplate::path(5), 0, 1, PartitionScheme::kBlock);
  EXPECT_DOUBLE_EQ(result.total_ghost_bytes, 0.0);
  EXPECT_DOUBLE_EQ(result.replication, 0.0);
  EXPECT_DOUBLE_EQ(result.load_imbalance, 1.0);
}

TEST(DistSim, HandComputedGhostsOnPath) {
  // Path 0-1-2-3 split into ranks {0,1} and {2,3}: each rank has one
  // ghost (the far endpoint of the cut edge 1-2).
  const Graph g = testing::path_graph(4);
  const auto result = simulate_distributed_dp(
      g, TreeTemplate::path(3), 0, 2, PartitionScheme::kBlock);
  ASSERT_EQ(result.ghosts_per_rank.size(), 2u);
  EXPECT_EQ(result.ghosts_per_rank[0], 1u);
  EXPECT_EQ(result.ghosts_per_rank[1], 1u);
  EXPECT_DOUBLE_EQ(result.replication, 0.5);
}

TEST(DistSim, MoreRanksNeverLessCommunication) {
  const Graph g = largest_component(chung_lu(2000, 8000, 2.2, 100, 7));
  double previous = -1.0;
  for (int ranks : {2, 4, 8, 16}) {
    const auto result = simulate_distributed_dp(
        g, catalog_entry("U7-1").tree, 0, ranks, PartitionScheme::kHash, 3);
    EXPECT_GE(result.total_ghost_bytes, previous);
    previous = result.total_ghost_bytes;
  }
}

TEST(DistSim, BlockBeatsHashOnRoadLocality) {
  // Grid road networks have strong vertex locality: contiguous blocks
  // cut few edges, hashed ownership cuts almost all of them.
  const Graph g = largest_component(grid_road(4000, 0.72, 5));
  const auto block = simulate_distributed_dp(
      g, catalog_entry("U7-1").tree, 0, 8, PartitionScheme::kBlock);
  const auto hash = simulate_distributed_dp(
      g, catalog_entry("U7-1").tree, 0, 8, PartitionScheme::kHash, 5);
  EXPECT_LT(block.total_ghost_bytes, hash.total_ghost_bytes / 4.0);
}

TEST(DistSim, RowBytesTrackPassiveChildWidth) {
  const Graph g = testing::complete_graph(12);
  const auto result = simulate_distributed_dp(
      g, catalog_entry("U7-2").tree, 0, 3, PartitionScheme::kBlock);
  for (const auto& node : result.per_node) {
    if (node.passive_size >= 2) {
      EXPECT_EQ(node.row_bytes,
                choose(7, node.passive_size) * sizeof(double));
    } else {
      EXPECT_EQ(node.row_bytes, 0u);
    }
  }
}

TEST(DistSim, Validation) {
  const Graph g = testing::path_graph(4);
  EXPECT_THROW(simulate_distributed_dp(g, TreeTemplate::path(5), 3, 2,
                                       PartitionScheme::kBlock),
               std::invalid_argument);
}

}  // namespace
}  // namespace fascia::dist
