#include "graph/components.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "helpers.hpp"

namespace fascia {
namespace {

TEST(Components, SingleComponent) {
  const Graph g = testing::path_graph(5);
  VertexId count = 0;
  const auto ids = connected_components(g, count);
  EXPECT_EQ(count, 1);
  for (VertexId id : ids) EXPECT_EQ(id, 0);
}

TEST(Components, CountsDisjointPieces) {
  // Two triangles and an isolated vertex.
  const Graph g = build_graph(
      7, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  VertexId count = 0;
  const auto ids = connected_components(g, count);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(ids[0], ids[1]);
  EXPECT_EQ(ids[0], ids[2]);
  EXPECT_EQ(ids[3], ids[5]);
  EXPECT_NE(ids[0], ids[3]);
  EXPECT_NE(ids[6], ids[0]);
  EXPECT_NE(ids[6], ids[3]);
}

TEST(Components, LargestComponentExtraction) {
  // Component A: path of 4; component B: triangle.
  const Graph g = build_graph(
      7, {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {4, 6}});
  const Graph largest = largest_component(g);
  EXPECT_EQ(largest.num_vertices(), 4);
  EXPECT_EQ(largest.num_edges(), 3);
}

TEST(Components, LargestOfConnectedGraphIsItself) {
  const Graph g = testing::cycle_graph(6);
  const Graph largest = largest_component(g);
  EXPECT_EQ(largest.num_vertices(), 6);
  EXPECT_EQ(largest.num_edges(), 6);
}

TEST(Components, LabelsSurviveExtraction) {
  Graph g = build_graph(5, {{0, 1}, {1, 2}, {3, 4}});
  g.set_labels({0, 1, 2, 3, 3}, 4);
  const Graph largest = largest_component(g);
  ASSERT_EQ(largest.num_vertices(), 3);
  ASSERT_TRUE(largest.has_labels());
  EXPECT_EQ(largest.label(0), 0);
  EXPECT_EQ(largest.label(1), 1);
  EXPECT_EQ(largest.label(2), 2);
}

TEST(Components, IsolatedVerticesAreComponents) {
  const Graph g = build_graph(4, {{1, 2}});
  VertexId count = 0;
  connected_components(g, count);
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace fascia
