#pragma once
// Shared test utilities: small reference implementations the suites
// cross-check the library against.  Everything here is deliberately
// naive — clarity over speed.

#include <algorithm>
#include <functional>
#include <numeric>
#include <vector>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "treelet/tree_template.hpp"

namespace fascia::testing {

/// Brute-force count of injective homomorphisms (maps) of `tmpl` into
/// `graph`, optionally restricted to colorful maps under `colors`
/// (pass empty for unrestricted).  Labels respected when both sides
/// have them.  Works for TreeTemplate and MixedTemplate alike.
template <class TemplateT>
double brute_force_maps(const Graph& graph, const TemplateT& tmpl,
                        const std::vector<std::uint8_t>& colors = {}) {
  std::vector<int> order{0};
  std::vector<int> parent(static_cast<std::size_t>(tmpl.size()), -1);
  std::vector<char> placed(static_cast<std::size_t>(tmpl.size()), 0);
  placed[0] = 1;
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (int u : tmpl.neighbors(order[i])) {
      if (!placed[static_cast<std::size_t>(u)]) {
        placed[static_cast<std::size_t>(u)] = 1;
        parent[static_cast<std::size_t>(u)] = order[i];
        order.push_back(u);
      }
    }
  }

  std::vector<VertexId> image(static_cast<std::size_t>(tmpl.size()), -1);
  std::vector<char> vertex_used(static_cast<std::size_t>(graph.num_vertices()), 0);
  std::vector<char> color_used(32, 0);
  double maps = 0.0;

  std::function<void(std::size_t)> recurse = [&](std::size_t pos) {
    if (pos == order.size()) {
      maps += 1.0;
      return;
    }
    const int tv = order[pos];
    auto try_vertex = [&](VertexId v) {
      if (vertex_used[static_cast<std::size_t>(v)]) return;
      if (!colors.empty() && color_used[colors[static_cast<std::size_t>(v)]]) {
        return;
      }
      if (tmpl.has_labels() && graph.has_labels() &&
          tmpl.label(tv) != graph.label(v)) {
        return;
      }
      for (int u : tmpl.neighbors(tv)) {
        if (image[static_cast<std::size_t>(u)] >= 0 &&
            !graph.has_edge(image[static_cast<std::size_t>(u)], v)) {
          return;
        }
      }
      image[static_cast<std::size_t>(tv)] = v;
      vertex_used[static_cast<std::size_t>(v)] = 1;
      if (!colors.empty()) color_used[colors[static_cast<std::size_t>(v)]] = 1;
      recurse(pos + 1);
      if (!colors.empty()) color_used[colors[static_cast<std::size_t>(v)]] = 0;
      vertex_used[static_cast<std::size_t>(v)] = 0;
      image[static_cast<std::size_t>(tv)] = -1;
    };
    if (pos == 0) {
      for (VertexId v = 0; v < graph.num_vertices(); ++v) try_vertex(v);
    } else {
      const VertexId anchor =
          image[static_cast<std::size_t>(parent[static_cast<std::size_t>(tv)])];
      for (VertexId v : graph.neighbors(anchor)) try_vertex(v);
    }
  };
  recurse(0);
  return maps;
}

/// Brute-force |Aut|: tries all k! permutations.
inline std::uint64_t brute_force_automorphisms(const TreeTemplate& tmpl) {
  const int k = tmpl.size();
  std::vector<int> perm(static_cast<std::size_t>(k));
  std::iota(perm.begin(), perm.end(), 0);
  std::uint64_t count = 0;
  do {
    bool ok = true;
    for (auto [u, v] : tmpl.edges()) {
      if (!tmpl.has_edge(perm[static_cast<std::size_t>(u)],
                         perm[static_cast<std::size_t>(v)])) {
        ok = false;
        break;
      }
    }
    if (ok && tmpl.has_labels()) {
      for (int v = 0; v < k && ok; ++v) {
        ok = tmpl.label(v) == tmpl.label(perm[static_cast<std::size_t>(v)]);
      }
    }
    if (ok) ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return count;
}

/// Brute-force vertex orbits via permutation search.
inline std::vector<int> brute_force_orbits(const TreeTemplate& tmpl) {
  const int k = tmpl.size();
  std::vector<int> orbit(static_cast<std::size_t>(k));
  std::iota(orbit.begin(), orbit.end(), 0);
  std::vector<int> perm(static_cast<std::size_t>(k));
  std::iota(perm.begin(), perm.end(), 0);
  do {
    bool ok = true;
    for (auto [u, v] : tmpl.edges()) {
      if (!tmpl.has_edge(perm[static_cast<std::size_t>(u)],
                         perm[static_cast<std::size_t>(v)])) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (int v = 0; v < k; ++v) {
        const int target = perm[static_cast<std::size_t>(v)];
        const int rep = std::min(orbit[static_cast<std::size_t>(v)],
                                 orbit[static_cast<std::size_t>(target)]);
        // Union by minimum representative (iterated to closure below).
        orbit[static_cast<std::size_t>(v)] = rep;
        orbit[static_cast<std::size_t>(target)] = rep;
      }
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  // Path-compress representatives to fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int v = 0; v < k; ++v) {
      const int rep = orbit[static_cast<std::size_t>(
          orbit[static_cast<std::size_t>(v)])];
      if (rep != orbit[static_cast<std::size_t>(v)]) {
        orbit[static_cast<std::size_t>(v)] = rep;
        changed = true;
      }
    }
  }
  return orbit;
}

/// Tiny deterministic test graphs.
inline Graph triangle_graph() {
  return build_graph(3, {{0, 1}, {1, 2}, {0, 2}});
}

inline Graph complete_graph(VertexId n) {
  EdgeList edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return build_graph(n, edges);
}

inline Graph cycle_graph(VertexId n) {
  EdgeList edges;
  for (VertexId v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  return build_graph(n, edges);
}

inline Graph path_graph(VertexId n) {
  EdgeList edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return build_graph(n, edges);
}

inline Graph star_graph(VertexId n) {
  EdgeList edges;
  for (VertexId v = 1; v < n; ++v) edges.emplace_back(0, v);
  return build_graph(n, edges);
}

}  // namespace fascia::testing
