#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace fascia {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint32_t bound : {1u, 2u, 3u, 7u, 10u, 1000u}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Rng, BoundedOneAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedCoversAllValues) {
  Xoshiro256 rng(3);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(rng.bounded(12));
  EXPECT_EQ(seen.size(), 12u);
}

TEST(Rng, BoundedRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.bounded(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int count : counts) {
    EXPECT_NEAR(count, expected, expected * 0.1);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, SplitStreamsDoNotOverlap) {
  Xoshiro256 base(99);
  Xoshiro256 s0 = base.split(0);
  Xoshiro256 s1 = base.split(1);
  std::set<std::uint64_t> from_s0;
  for (int i = 0; i < 1000; ++i) from_s0.insert(s0());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) collisions += from_s0.count(s1());
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Xoshiro256 a(123), b(123);
  (void)a.split(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitmixDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(Rng, SplitmixSequenceAdvances) {
  std::uint64_t state = 42;
  const auto first = splitmix64(state);
  const auto second = splitmix64(state);
  EXPECT_NE(first, second);
}

TEST(Rng, LongJumpChangesState) {
  Xoshiro256 a(1), b(1);
  b.long_jump();
  EXPECT_NE(a(), b());
}

}  // namespace
}  // namespace fascia
