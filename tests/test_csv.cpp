#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fascia {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "fascia_csv_basic.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({"1", "2"});
    csv.row({"x", "y"});
  }
  EXPECT_EQ(slurp(path), "a,b\n1,2\nx,y\n");
  std::remove(path.c_str());
}

TEST(Csv, EscapesSpecialCharacters) {
  const std::string path = ::testing::TempDir() + "fascia_csv_escape.csv";
  {
    CsvWriter csv(path, {"h"});
    csv.row({"has,comma"});
    csv.row({"has\"quote"});
  }
  EXPECT_EQ(slurp(path), "h\n\"has,comma\"\n\"has\"\"quote\"\n");
  std::remove(path.c_str());
}

TEST(Csv, InactiveWriterDiscardsRows) {
  CsvWriter csv;  // no file
  EXPECT_FALSE(csv.active());
  csv.row({"anything"});  // must not crash
}

TEST(Csv, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

}  // namespace
}  // namespace fascia
