#include "sched/batch.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/counter.hpp"
#include "core/motifs.hpp"
#include "exact/backtrack.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "sched/plan.hpp"
#include "treelet/free_trees.hpp"
#include "util/stats.hpp"
#include "util/error.hpp"

namespace fascia {
namespace {

Graph test_graph() {
  static const Graph g = largest_component(erdos_renyi_gnm(60, 150, 7));
  return g;
}

std::vector<sched::BatchJob> fixed_jobs(int k, int iterations) {
  std::vector<sched::BatchJob> jobs;
  for (const TreeTemplate& tree : all_free_trees(k)) {
    sched::BatchJob job;
    job.tmpl = tree;
    job.iterations = iterations;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// The per-template reference: count_template under the batch's shared
/// coloring seed and color count.
CountResult reference(const Graph& g, const TreeTemplate& tree,
                      int iterations, std::uint64_t seed, int num_colors) {
  CountOptions options;
  options.sampling.iterations = iterations;
  options.sampling.seed = seed;
  options.sampling.num_colors = num_colors;
  options.execution.mode = ParallelMode::kSerial;
  return count_template(g, tree, options);
}

TEST(Sched, BatchMatchesPerTemplatePathWithReuse) {
  const Graph g = test_graph();
  const auto jobs = fixed_jobs(5, 4);
  sched::BatchOptions options;
  options.seed = 11;
  const sched::BatchResult batch = sched::run_batch(g, jobs, options);
  ASSERT_EQ(batch.jobs.size(), jobs.size());
  EXPECT_EQ(batch.num_colors, 5);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const CountResult ref = reference(g, jobs[j].tmpl, 4, 11, 5);
    EXPECT_EQ(batch.jobs[j].per_iteration, ref.per_iteration)
        << "job " << j;
    EXPECT_EQ(batch.jobs[j].estimate, ref.estimate) << "job " << j;
    EXPECT_EQ(batch.jobs[j].iterations, 4);
    EXPECT_TRUE(batch.jobs[j].converged);
    EXPECT_FALSE(batch.jobs[j].adaptive);
  }
  EXPECT_EQ(batch.iterations_total, 4 * static_cast<long long>(jobs.size()));
  EXPECT_EQ(batch.coloring_rounds, 4);
}

TEST(Sched, ReuseDisabledBitIdentical) {
  const Graph g = test_graph();
  const auto jobs = fixed_jobs(5, 3);
  sched::BatchOptions options;
  options.seed = 23;
  options.cross_template_reuse = false;
  const sched::BatchResult batch = sched::run_batch(g, jobs, options);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const CountResult ref = reference(g, jobs[j].tmpl, 3, 23, 5);
    EXPECT_EQ(batch.jobs[j].per_iteration, ref.per_iteration)
        << "job " << j;
    EXPECT_EQ(batch.jobs[j].estimate, ref.estimate) << "job " << j;
  }
  // No sharing: every demanded stage is evaluated.
  EXPECT_EQ(batch.unique_stages, batch.total_stage_instances);
  EXPECT_EQ(batch.stage_evaluations, batch.stage_requests);
  EXPECT_DOUBLE_EQ(batch.cache_hit_rate(), 0.0);
}

TEST(Sched, DeterministicAcrossModesAndThreads) {
  const Graph g = test_graph();
  const auto jobs = fixed_jobs(5, 3);
  sched::BatchOptions serial;
  serial.seed = 5;
  serial.mode = ParallelMode::kSerial;
  sched::BatchOptions outer = serial;
  outer.mode = ParallelMode::kOuterLoop;
  outer.num_threads = 4;
  sched::BatchOptions inner = serial;
  inner.mode = ParallelMode::kInnerLoop;
  inner.num_threads = 2;
  const auto a = sched::run_batch(g, jobs, serial);
  const auto b = sched::run_batch(g, jobs, outer);
  const auto c = sched::run_batch(g, jobs, inner);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].per_iteration, b.jobs[j].per_iteration);
    EXPECT_EQ(a.jobs[j].per_iteration, c.jobs[j].per_iteration);
  }
}

TEST(Sched, CrossTemplateReuseSharesStages) {
  const Graph g = test_graph();
  const auto jobs = fixed_jobs(5, 2);
  sched::BatchOptions options;
  const sched::BatchResult batch = sched::run_batch(g, jobs, options);
  // The 3 size-5 trees share small rooted subtemplates (every one-at-
  // a-time partition contains the rooted pair, for a start).
  EXPECT_LT(batch.unique_stages, batch.total_stage_instances);
  EXPECT_LT(batch.stage_evaluations, batch.stage_requests);
  EXPECT_GT(batch.cache_hit_rate(), 0.0);
}

TEST(Sched, PlanDeduplicatesByRootedCanonicalForm) {
  const auto jobs = fixed_jobs(5, 1);
  sched::BatchOptions options;
  const sched::BatchPlan plan = sched::plan_batch(test_graph(), jobs, options);
  ASSERT_EQ(plan.job_root.size(), jobs.size());
  // Merged DAG is a valid bottom-up DAG covering every job.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_EQ(plan.merged.node(plan.job_root[j]).size(), 5);
    EXPECT_EQ(plan.merged.node(plan.job_root[j]).free_after, -1);
    EXPECT_GT(plan.job_stage_demand[j], 0u);
    EXPECT_GT(plan.job_dp_cost[j], 0.0);
  }
  for (int i = 0; i < plan.merged.num_nodes(); ++i) {
    const Subtemplate& node = plan.merged.node(i);
    if (node.is_leaf()) continue;
    EXPECT_LT(node.active, i);
    EXPECT_LT(node.passive, i);
  }
}

TEST(Sched, MixedTemplateSizesPinSharedRoots) {
  // A size-3 job's root stage is also an internal stage of the size-5
  // path's partition; the planner must pin it so its table is still
  // live when the small job reads its total.
  const Graph g = test_graph();
  std::vector<sched::BatchJob> jobs;
  jobs.push_back({TreeTemplate::path(3), 3, 0.0, 1000});
  jobs.push_back({TreeTemplate::path(5), 3, 0.0, 1000});
  sched::BatchOptions options;
  options.seed = 9;
  const sched::BatchResult batch = sched::run_batch(g, jobs, options);
  EXPECT_EQ(batch.num_colors, 5);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const CountResult ref = reference(g, jobs[j].tmpl, 3, 9, 5);
    EXPECT_EQ(batch.jobs[j].per_iteration, ref.per_iteration)
        << "job " << j;
  }
}

TEST(Sched, SingleVertexTemplateCountsVertices) {
  const Graph g = test_graph();
  std::vector<sched::BatchJob> jobs;
  jobs.push_back({TreeTemplate::from_edges(1, {}), 2, 0.0, 1000});
  const sched::BatchResult batch = sched::run_batch(g, jobs, {});
  EXPECT_DOUBLE_EQ(batch.jobs[0].estimate,
                   static_cast<double>(g.num_vertices()));
}

TEST(Sched, AdaptiveStopsWithinCapAndTracksExact) {
  const Graph g = largest_component(erdos_renyi_gnm(40, 80, 13));
  std::vector<sched::BatchJob> jobs;
  for (const TreeTemplate& tree : all_free_trees(4)) {
    sched::BatchJob job;
    job.tmpl = tree;
    job.target_relative_stderr = 0.05;
    job.max_iterations = 600;
    jobs.push_back(std::move(job));
  }
  sched::BatchOptions options;
  options.mode = ParallelMode::kSerial;
  options.round_iterations = 16;
  options.seed = 3;
  const sched::BatchResult batch = sched::run_batch(g, jobs, options);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const sched::BatchJobResult& job = batch.jobs[j];
    EXPECT_TRUE(job.adaptive);
    EXPECT_LE(job.iterations, 600);
    EXPECT_GE(job.iterations, 2);
    if (job.converged) {
      EXPECT_LE(job.relative_stderr, 0.05);
    } else {
      EXPECT_EQ(job.iterations, 600);
    }
    const double exact = exact::count_embeddings(g, jobs[j].tmpl);
    EXPECT_NEAR(job.estimate, exact, exact * 0.25 + 1.0) << "job " << j;
  }
}

TEST(Sched, AdaptiveLooseTargetRetiresEarly) {
  const Graph g = test_graph();
  std::vector<sched::BatchJob> jobs;
  sched::BatchJob job;
  job.tmpl = TreeTemplate::path(4);
  job.target_relative_stderr = 0.9;  // any 2+ iterations satisfy this
  job.max_iterations = 500;
  jobs.push_back(std::move(job));
  sched::BatchOptions options;
  options.round_iterations = 4;
  const sched::BatchResult batch = sched::run_batch(g, jobs, options);
  EXPECT_TRUE(batch.jobs[0].converged);
  EXPECT_LT(batch.jobs[0].iterations, 500);
}

TEST(Sched, AdaptiveBatchSingleJobMatchesUniform) {
  // With one adaptive job the greedy controller has nobody to steal
  // from or donate to: grants land on the same global coloring rounds
  // the uniform allocation would run, so the sample stream — and every
  // per-iteration estimate — must match bit for bit.
  const Graph g = largest_component(erdos_renyi_gnm(40, 80, 13));
  std::vector<sched::BatchJob> jobs;
  sched::BatchJob job;
  job.tmpl = TreeTemplate::path(4);
  job.target_relative_stderr = 0.05;
  job.max_iterations = 600;
  jobs.push_back(std::move(job));
  sched::BatchOptions uniform;
  uniform.mode = ParallelMode::kSerial;
  uniform.round_iterations = 16;
  uniform.seed = 3;
  sched::BatchOptions greedy = uniform;
  greedy.adaptive_batch = true;

  const sched::BatchResult a = sched::run_batch(g, jobs, uniform);
  const sched::BatchResult b = sched::run_batch(g, jobs, greedy);
  EXPECT_EQ(a.jobs[0].converged, b.jobs[0].converged);
  EXPECT_EQ(a.jobs[0].per_iteration, b.jobs[0].per_iteration);
  EXPECT_EQ(a.jobs[0].estimate, b.jobs[0].estimate);
}

TEST(Sched, AdaptiveBatchReallocatesBudgetToHardJob) {
  // Motivo-style cross-template reallocation: an easy job (loose
  // target) converges in its warm-up round and donates its unused
  // budget to the pool; a hard job (unreachable target) then draws
  // grants PAST its own max_iterations.  Fixed-budget jobs ride the
  // same shared colorings either way and must stay bit-identical to
  // the uniform run.
  const Graph g = test_graph();
  std::vector<sched::BatchJob> jobs;
  sched::BatchJob easy;
  easy.tmpl = TreeTemplate::path(4);
  easy.target_relative_stderr = 0.9;  // any 2+ iterations satisfy this
  easy.max_iterations = 400;
  jobs.push_back(std::move(easy));
  sched::BatchJob hard;
  hard.tmpl = TreeTemplate::star(4);
  hard.target_relative_stderr = 1e-9;  // unreachable on purpose
  hard.max_iterations = 12;
  jobs.push_back(std::move(hard));
  sched::BatchJob fixed;
  fixed.tmpl = TreeTemplate::path(3);
  fixed.iterations = 10;
  jobs.push_back(std::move(fixed));

  sched::BatchOptions uniform;
  uniform.mode = ParallelMode::kSerial;
  uniform.round_iterations = 8;
  uniform.seed = 11;
  sched::BatchOptions greedy = uniform;
  greedy.adaptive_batch = true;

  const sched::BatchResult base = sched::run_batch(g, jobs, uniform);
  const sched::BatchResult pooled = sched::run_batch(g, jobs, greedy);

  EXPECT_TRUE(pooled.jobs[0].converged);
  // Uniform honors the per-job cap; greedy spends the pooled budget on
  // the worst job instead.
  EXPECT_LE(base.jobs[1].iterations, 12);
  EXPECT_GT(pooled.jobs[1].iterations, 12);
  EXPECT_FALSE(pooled.jobs[1].converged);
  // The fixed job is untouched by the controller mode.
  EXPECT_EQ(base.jobs[2].iterations, 10);
  EXPECT_EQ(pooled.jobs[2].iterations, 10);
  EXPECT_EQ(base.jobs[2].per_iteration, pooled.jobs[2].per_iteration);
}

TEST(Sched, AdaptiveBatchRejectsCheckpointing) {
  // Greedy grants decouple per-job sample streams from the global
  // coloring counter that the checkpoint format indexes by.
  const Graph g = test_graph();
  std::vector<sched::BatchJob> jobs;
  sched::BatchJob job;
  job.tmpl = TreeTemplate::path(4);
  job.target_relative_stderr = 0.1;
  job.max_iterations = 100;
  jobs.push_back(std::move(job));
  sched::BatchOptions options;
  options.adaptive_batch = true;
  options.run.checkpoint_path = "unused.ckpt";
  EXPECT_THROW(sched::run_batch(g, jobs, options), fascia::Error);
}

TEST(Sched, ValidationErrors) {
  const Graph g = test_graph();
  EXPECT_THROW(sched::run_batch(g, {}, {}), fascia::Error);

  std::vector<sched::BatchJob> jobs;
  jobs.push_back({TreeTemplate::path(5), 2, 0.0, 1000});
  sched::BatchOptions narrow;
  narrow.num_colors = 4;  // smaller than the template
  EXPECT_THROW(sched::run_batch(g, jobs, narrow), fascia::Error);

  jobs[0].iterations = 0;
  EXPECT_THROW(sched::run_batch(g, jobs, {}), fascia::Error);

  jobs[0].target_relative_stderr = 0.1;
  jobs[0].max_iterations = 1;
  EXPECT_THROW(sched::run_batch(g, jobs, {}), fascia::Error);
}

TEST(Sched, MotifProfileBatchFlagMatchesSharedSeedPath) {
  const Graph g = test_graph();
  CountOptions options;
  options.sampling.iterations = 3;
  options.sampling.seed = 31;
  options.execution.mode = ParallelMode::kSerial;
  options.execution.batch_engine = true;
  const MotifProfile profile = count_all_treelets(g, 5, options);
  ASSERT_EQ(profile.counts.size(), 3u);
  ASSERT_EQ(profile.iterations.size(), 3u);
  ASSERT_EQ(profile.seconds.size(), 3u);
  for (std::size_t i = 0; i < profile.trees.size(); ++i) {
    const CountResult ref = reference(g, profile.trees[i], 3, 31, 5);
    EXPECT_EQ(profile.counts[i], ref.estimate) << "shape " << i;
    EXPECT_EQ(profile.iterations[i], 3);
  }
}

}  // namespace
}  // namespace fascia
