#include "analytics/profiles.hpp"

#include <gtest/gtest.h>

namespace fascia::analytics {
namespace {

TEST(Profiles, DistanceZeroForIdentical) {
  const std::vector<double> profile = {1.0, 10.0, 100.0};
  EXPECT_DOUBLE_EQ(profile_log_distance(profile, profile), 0.0);
}

TEST(Profiles, DistanceDetectsScaleDifference) {
  const std::vector<double> a = {1.0, 1.0, 1.0};
  const std::vector<double> b = {10.0, 10.0, 10.0};
  EXPECT_NEAR(profile_log_distance(a, b), 1.0, 1e-12);  // one decade
}

TEST(Profiles, DistanceSkipsZeros) {
  const std::vector<double> a = {0.0, 10.0};
  const std::vector<double> b = {5.0, 10.0};
  EXPECT_DOUBLE_EQ(profile_log_distance(a, b), 0.0);
}

TEST(Profiles, MismatchedLengthsThrow) {
  EXPECT_THROW(profile_log_distance({1.0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(profile_log_correlation({1.0}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(Profiles, CorrelationOneForProportionalProfiles) {
  const std::vector<double> a = {1.0, 10.0, 100.0, 1000.0};
  const std::vector<double> b = {2.0, 20.0, 200.0, 2000.0};
  EXPECT_NEAR(profile_log_correlation(a, b), 1.0, 1e-12);
}

TEST(Profiles, CorrelationNegativeForOpposedProfiles) {
  const std::vector<double> a = {1.0, 10.0, 100.0};
  const std::vector<double> b = {100.0, 10.0, 1.0};
  EXPECT_NEAR(profile_log_correlation(a, b), -1.0, 1e-12);
}

TEST(Profiles, CorrelationDegenerateCases) {
  // Constant profiles have zero variance: define correlation as 1.
  EXPECT_DOUBLE_EQ(profile_log_correlation({5.0, 5.0}, {1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(profile_log_correlation({1.0}, {2.0}), 1.0);
}

TEST(Profiles, SymmetricDistance) {
  const std::vector<double> a = {1.0, 4.0, 9.0};
  const std::vector<double> b = {2.0, 3.0, 20.0};
  EXPECT_DOUBLE_EQ(profile_log_distance(a, b), profile_log_distance(b, a));
}

}  // namespace
}  // namespace fascia::analytics
