#include "treelet/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "treelet/catalog.hpp"
#include "treelet/free_trees.hpp"
#include "util/error.hpp"

namespace fascia {
namespace {

struct StrategyParam {
  PartitionStrategy strategy;
  bool share;
};

class PartitionInvariants
    : public ::testing::TestWithParam<std::tuple<int, PartitionStrategy, bool>> {
};

TEST_P(PartitionInvariants, StructureIsWellFormed) {
  const auto [k, strategy, share] = GetParam();
  for (const TreeTemplate& tree : all_free_trees(k)) {
    const PartitionTree part = partition_template(tree, strategy, share);
    const auto& nodes = part.nodes();
    ASSERT_FALSE(nodes.empty());

    // Root node covers the full template.
    EXPECT_EQ(nodes.back().size(), k);

    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const Subtemplate& node = nodes[i];
      // Root belongs to the node's vertex set.
      EXPECT_TRUE(std::binary_search(node.vertices.begin(),
                                     node.vertices.end(), node.root));
      if (node.is_leaf()) {
        EXPECT_EQ(node.size(), 1);
        continue;
      }
      // Topological order: children strictly before parents.
      ASSERT_LT(node.active, static_cast<int>(i));
      ASSERT_LT(node.passive, static_cast<int>(i));
      const Subtemplate& active = part.node(node.active);
      const Subtemplate& passive = part.node(node.passive);
      // Sizes partition the parent.
      EXPECT_EQ(active.size() + passive.size(), node.size());
      // Canonical keys are non-empty and size-prefixed.
      EXPECT_FALSE(node.canon.empty());
    }
  }
}

TEST_P(PartitionInvariants, CutsAdjacentToRoot) {
  // Without sharing, the recorded vertex sets are exact, so we can
  // verify the root-adjacency requirement structurally.
  const auto [k, strategy, share] = GetParam();
  if (share) GTEST_SKIP() << "vertex sets are representative under sharing";
  for (const TreeTemplate& tree : all_free_trees(k)) {
    const PartitionTree part = partition_template(tree, strategy, false);
    for (const Subtemplate& node : part.nodes()) {
      if (node.is_leaf()) continue;
      const Subtemplate& active = part.node(node.active);
      const Subtemplate& passive = part.node(node.passive);
      // Active keeps the root; passive is rooted at a template
      // neighbor of the parent root.
      EXPECT_EQ(active.root, node.root);
      EXPECT_TRUE(tree.has_edge(node.root, passive.root))
          << tree.describe();
      // The two children exactly partition the parent's vertices.
      std::vector<int> merged;
      std::merge(active.vertices.begin(), active.vertices.end(),
                 passive.vertices.begin(), passive.vertices.end(),
                 std::back_inserter(merged));
      EXPECT_EQ(merged, node.vertices);
    }
  }
}

TEST_P(PartitionInvariants, FreeScheduleIsConsistent) {
  const auto [k, strategy, share] = GetParam();
  for (const TreeTemplate& tree : all_free_trees(k)) {
    const PartitionTree part = partition_template(tree, strategy, share);
    const auto& nodes = part.nodes();
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
      // No node may be consumed after its free point.
      for (std::size_t j = 0; j < nodes.size(); ++j) {
        if (nodes[j].active == static_cast<int>(i) ||
            nodes[j].passive == static_cast<int>(i)) {
          ASSERT_NE(nodes[i].free_after, -1);
          EXPECT_GE(nodes[i].free_after, static_cast<int>(j));
        }
      }
    }
    EXPECT_EQ(nodes.back().free_after, -1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionInvariants,
    ::testing::Combine(::testing::Values(2, 3, 5, 7, 10),
                       ::testing::Values(PartitionStrategy::kOneAtATime,
                                         PartitionStrategy::kBalanced),
                       ::testing::Bool()));

TEST(Partition, SharingNeverIncreasesNodeCount) {
  for (int k : {5, 7, 10, 12}) {
    for (const TreeTemplate& tree : all_free_trees(k)) {
      const auto shared =
          partition_template(tree, PartitionStrategy::kOneAtATime, true);
      const auto unshared =
          partition_template(tree, PartitionStrategy::kOneAtATime, false);
      EXPECT_LE(shared.num_nodes(), unshared.num_nodes());
    }
  }
}

TEST(Partition, SymmetricTemplateShares) {
  // U7-2's three identical legs must collapse under sharing.
  const TreeTemplate& spider = catalog_entry("U7-2").tree;
  const auto shared =
      partition_template(spider, PartitionStrategy::kOneAtATime, true);
  const auto unshared =
      partition_template(spider, PartitionStrategy::kOneAtATime, false);
  EXPECT_LT(shared.num_nodes(), unshared.num_nodes());
}

TEST(Partition, MaxLiveTablesSmall) {
  // The paper: "at any instance, the tables and counts for at most
  // four subtemplates need to be active at once."
  for (int k : {3, 5, 7, 10, 12}) {
    for (const TreeTemplate& tree : all_free_trees(k)) {
      const auto part =
          partition_template(tree, PartitionStrategy::kOneAtATime, true);
      EXPECT_LE(part.max_live_tables(), 5) << tree.describe();
    }
  }
}

TEST(Partition, RootOverrideRespected) {
  const TreeTemplate path = TreeTemplate::path(5);
  for (int root = 0; root < 5; ++root) {
    const auto part = partition_template(
        path, PartitionStrategy::kOneAtATime, true, root);
    EXPECT_EQ(part.template_root(), root);
  }
  EXPECT_THROW(
      partition_template(path, PartitionStrategy::kOneAtATime, true, 7),
      fascia::Error);
}

TEST(Partition, OneAtATimeRootIsLeafByDefault) {
  const TreeTemplate& spider = catalog_entry("U7-2").tree;
  const auto part =
      partition_template(spider, PartitionStrategy::kOneAtATime, true);
  EXPECT_EQ(spider.degree(part.template_root()), 1);
}

TEST(Partition, DpCostPositiveAndStrategySensitive) {
  const TreeTemplate path = TreeTemplate::path(10);
  const auto oaat =
      partition_template(path, PartitionStrategy::kOneAtATime, true);
  const auto balanced =
      partition_template(path, PartitionStrategy::kBalanced, true);
  EXPECT_GT(oaat.dp_cost(10), 0.0);
  EXPECT_GT(balanced.dp_cost(10), 0.0);
  // For a long path the cost models differ between strategies.
  EXPECT_NE(oaat.dp_cost(10), balanced.dp_cost(10));
}

TEST(Partition, DescribeListsAllNodes) {
  const auto part = partition_template(TreeTemplate::path(4),
                                       PartitionStrategy::kOneAtATime, true);
  const std::string text = part.describe();
  EXPECT_NE(text.find("size=4"), std::string::npos);
  EXPECT_NE(text.find("free_after"), std::string::npos);
}

TEST(Partition, SingleVertexTemplate) {
  const TreeTemplate single = TreeTemplate::from_edges(1, {});
  const auto part =
      partition_template(single, PartitionStrategy::kOneAtATime, true);
  EXPECT_EQ(part.num_nodes(), 1);
  EXPECT_TRUE(part.nodes().front().is_leaf());
}

}  // namespace
}  // namespace fascia
