#include "graph/datasets.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/components.hpp"
#include "graph/io.hpp"

namespace fascia {
namespace {

TEST(Datasets, TableOneHasTenRows) {
  EXPECT_EQ(dataset_specs().size(), 10u);
  EXPECT_EQ(dataset_specs().front().name, "portland");
  EXPECT_EQ(dataset_specs().back().name, "celegans");
}

TEST(Datasets, SpecLookup) {
  const auto& spec = dataset_spec("enron");
  EXPECT_EQ(spec.paper_name, "Enron");
  EXPECT_EQ(spec.target_n, 33'696);
  EXPECT_EQ(spec.target_m, 180'811);
  EXPECT_THROW(dataset_spec("nope"), std::invalid_argument);
}

TEST(Datasets, ScaleValidation) {
  EXPECT_THROW(make_dataset("enron", 0.0, 1), std::invalid_argument);
  EXPECT_THROW(make_dataset("enron", 1.5, 1), std::invalid_argument);
}

class SmallDatasetBuild : public ::testing::TestWithParam<const char*> {};

TEST_P(SmallDatasetBuild, BuildsConnectedAtFullSize) {
  // The non-scalable datasets are tiny enough to build at paper size.
  const Graph g = make_dataset(GetParam(), 1.0, 7);
  const auto& spec = dataset_spec(GetParam());
  VertexId components = 0;
  connected_components(g, components);
  EXPECT_EQ(components, 1);
  // Largest component retains the bulk of the generated network.
  EXPECT_GE(g.num_vertices(), spec.target_n / 2);
  EXPECT_LE(g.num_vertices(), spec.target_n);
  // Average degree in the right ballpark (factor ~1.6 tolerance: LCC
  // extraction shifts it).
  EXPECT_GT(g.avg_degree(), spec.target_avg_degree / 1.6);
  EXPECT_LT(g.avg_degree(), spec.target_avg_degree * 1.6);
}

INSTANTIATE_TEST_SUITE_P(TinyNetworks, SmallDatasetBuild,
                         ::testing::Values("circuit", "ecoli", "hpylori",
                                           "celegans", "scerevisiae"));

class ScaledDatasetBuild : public ::testing::TestWithParam<const char*> {};

TEST_P(ScaledDatasetBuild, BuildsAtReducedScale) {
  const double scale = 0.01;
  const Graph g = make_dataset(GetParam(), scale, 7);
  const auto& spec = dataset_spec(GetParam());
  const double target_n = spec.target_n * scale;
  EXPECT_GT(g.num_vertices(), target_n * 0.3);
  EXPECT_LT(g.num_vertices(), target_n * 1.6);
  VertexId components = 0;
  connected_components(g, components);
  EXPECT_EQ(components, 1);
}

INSTANTIATE_TEST_SUITE_P(BigNetworks, ScaledDatasetBuild,
                         ::testing::Values("portland", "enron", "gnp",
                                           "slashdot", "road"));

TEST(Datasets, DeterministicInSeed) {
  const Graph a = make_dataset("hpylori", 1.0, 5);
  const Graph b = make_dataset("hpylori", 1.0, 5);
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(Datasets, DifferentDatasetsDifferentStreams) {
  // Same seed, different names must not produce identical graphs.
  const Graph a = make_dataset("ecoli", 1.0, 5);
  const Graph b = make_dataset("celegans", 1.0, 5);
  EXPECT_NE(a.num_edges(), b.num_edges());
}

TEST(Datasets, LoadOrMakePrefersFile) {
  const std::string path = ::testing::TempDir() + "fascia_dataset_file.txt";
  {
    std::ofstream out(path);
    out << "0 1\n1 2\n2 0\n";
  }
  const Graph g = load_or_make("enron", path, 1.0, 1);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  std::remove(path.c_str());

  const Graph generated = load_or_make("hpylori", "", 1.0, 1);
  EXPECT_GT(generated.num_vertices(), 100);
}

}  // namespace
}  // namespace fascia
