#include "analytics/gdd.hpp"

#include <gtest/gtest.h>

namespace fascia::analytics {
namespace {

TEST(Gdd, HistogramBinsByRoundedDegree) {
  auto hist = gdd_histogram({0.0, 1.0, 1.2, 2.0, 2.0, 4.9});
  ASSERT_EQ(hist.size(), 3u);  // degrees 1, 2, 5
  EXPECT_DOUBLE_EQ(hist[1], 2.0);  // 1.0 and 1.2
  EXPECT_DOUBLE_EQ(hist[2], 2.0);
  EXPECT_EQ(hist.count(3), 0u);
  EXPECT_DOUBLE_EQ(hist[5], 1.0);  // 4.9 rounds to 5
}

TEST(Gdd, HistogramExcludesZeroDegrees) {
  const auto hist = gdd_histogram({0.0, 0.4, -1.0});
  EXPECT_TRUE(hist.empty());
}

TEST(Gdd, HistogramIsSparseForHugeDegrees) {
  // Real graphlet degrees reach 1e9; the histogram must stay O(#distinct).
  const auto hist = gdd_histogram({1e9, 1e9, 3.0});
  EXPECT_EQ(hist.size(), 2u);
  EXPECT_DOUBLE_EQ(hist.at(1000000000), 2.0);
}

TEST(Gdd, AgreementWithHugeDegreesIsCheap) {
  const std::vector<double> a = {1e9, 2e9, 5.0};
  const std::vector<double> b = {1e9, 2e9, 5.0};
  EXPECT_DOUBLE_EQ(gdd_agreement(a, b), 1.0);
}

TEST(Gdd, AgreementOfIdenticalIsOne) {
  const std::vector<double> degrees = {1.0, 2.0, 2.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(gdd_agreement(degrees, degrees), 1.0);
}

TEST(Gdd, AgreementIsSymmetric) {
  const std::vector<double> a = {1.0, 1.0, 3.0};
  const std::vector<double> b = {2.0, 4.0, 4.0, 8.0};
  EXPECT_DOUBLE_EQ(gdd_agreement(a, b), gdd_agreement(b, a));
}

TEST(Gdd, AgreementBoundedBelowOneForDifferent) {
  const std::vector<double> a = {1.0, 1.0, 1.0};
  const std::vector<double> b = {50.0, 50.0, 50.0};
  const double agreement = gdd_agreement(a, b);
  EXPECT_LT(agreement, 1.0);
  EXPECT_GE(agreement, 0.0);
}

TEST(Gdd, DisjointSupportGivesMinimalAgreement) {
  // All mass at degree 1 vs all at degree 2: ||N1-N2|| = sqrt(2).
  const std::vector<double> a = {1.0, 1.0};
  const std::vector<double> b = {2.0, 2.0};
  EXPECT_NEAR(gdd_agreement(a, b), 0.0, 1e-12);
}

TEST(Gdd, ScalingInsideOneBinDoesNotMatter) {
  // d(j)/j normalization: distribution shape matters, vertex count
  // does not.
  const std::vector<double> small = {1.0, 2.0};
  const std::vector<double> big = {1.0, 1.0, 1.0, 2.0, 2.0, 2.0};
  EXPECT_NEAR(gdd_agreement(small, big), 1.0, 1e-12);
}

TEST(Gdd, AgreementFromHistogramsDirect) {
  GddHistogram hist_a = {{1, 4.0}};
  GddHistogram hist_b = {{1, 4.0}};
  EXPECT_DOUBLE_EQ(gdd_agreement_from_histograms(hist_a, hist_b), 1.0);
  GddHistogram hist_c = {{2, 4.0}};
  EXPECT_NEAR(gdd_agreement_from_histograms(hist_a, hist_c), 0.0, 1e-12);
}

TEST(Gdd, CloserDistributionsScoreHigher) {
  const std::vector<double> base = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> close = {1.0, 2.0, 3.0, 5.0};
  const std::vector<double> far = {10.0, 20.0, 30.0, 40.0};
  EXPECT_GT(gdd_agreement(base, close), gdd_agreement(base, far));
}

}  // namespace
}  // namespace fascia::analytics
