#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "graph/components.hpp"

namespace fascia {
namespace {

/// A 2-edge path: too small for any legal double-edge swap.
Graph testing_path() { return build_graph(3, {{0, 1}, {1, 2}}); }

TEST(Generators, GnmExactEdgeCount) {
  const Graph g = erdos_renyi_gnm(100, 250, 1);
  EXPECT_EQ(g.num_vertices(), 100);
  EXPECT_EQ(g.num_edges(), 250);
}

TEST(Generators, GnmClampsToMaximum) {
  const Graph g = erdos_renyi_gnm(5, 100, 1);
  EXPECT_EQ(g.num_edges(), 10);  // K5
}

TEST(Generators, GnmDeterministicInSeed) {
  const Graph a = erdos_renyi_gnm(50, 120, 9);
  const Graph b = erdos_renyi_gnm(50, 120, 9);
  const Graph c = erdos_renyi_gnm(50, 120, 10);
  EXPECT_EQ(edge_list(a), edge_list(b));
  EXPECT_NE(edge_list(a), edge_list(c));
}

class GnpStatistics : public ::testing::TestWithParam<double> {};

TEST_P(GnpStatistics, EdgeCountNearExpectation) {
  const double p = GetParam();
  const VertexId n = 400;
  const Graph g = erdos_renyi_gnp(n, p, 31);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              5.0 * std::sqrt(expected) + 10.0);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, GnpStatistics,
                         ::testing::Values(0.005, 0.02, 0.08));

TEST(Generators, GnpDegenerateCases) {
  EXPECT_EQ(erdos_renyi_gnp(10, 0.0, 1).num_edges(), 0);
  EXPECT_EQ(erdos_renyi_gnp(10, 1.0, 1).num_edges(), 45);
}

TEST(Generators, ChungLuRespectsSizeAndTail) {
  const Graph g = chung_lu(2000, 10000, 2.2, 150, 5);
  EXPECT_EQ(g.num_vertices(), 2000);
  // Rejection sampling may fall slightly short; never overshoot.
  EXPECT_LE(g.num_edges(), 10000);
  EXPECT_GE(g.num_edges(), 9000);
  // Power-law-ish: max degree well above average but bounded by cap+slack.
  EXPECT_GT(g.max_degree(), 4 * static_cast<EdgeCount>(g.avg_degree()));
  EXPECT_LE(g.max_degree(), 300);
}

TEST(Generators, ChungLuRejectsBadGamma) {
  EXPECT_THROW(chung_lu(100, 200, 1.0, 10, 1), std::invalid_argument);
}

TEST(Generators, GridRoadDegreesBounded) {
  const Graph g = grid_road(10000, 0.72, 3);
  EXPECT_LE(g.max_degree(), 4);
  const Graph lcc = largest_component(g);
  EXPECT_NEAR(lcc.avg_degree(), 2.8, 0.5);
}

TEST(Generators, ContactNetworkHitsAverageDegree) {
  const Graph g = largest_component(contact_network(5000, 25.0, 11));
  EXPECT_GT(g.num_vertices(), 4000);
  EXPECT_NEAR(g.avg_degree(), 25.0, 6.0);
  // Hubby but not power-law-extreme (Portland: d_max/d_avg ~ 7).
  EXPECT_GT(static_cast<double>(g.max_degree()), 1.5 * g.avg_degree());
}

TEST(Generators, NearTreeEdgeBudget) {
  const Graph g = near_tree(252, 399, 17);
  EXPECT_EQ(g.num_vertices(), 252);
  EXPECT_EQ(g.num_edges(), 399);
  VertexId components = 0;
  connected_components(g, components);
  EXPECT_EQ(components, 1);  // spanning tree guarantees connectivity
}

TEST(Generators, RandomTreeIsTree) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Graph g = random_tree(64, seed);
    EXPECT_EQ(g.num_edges(), 63);
    VertexId components = 0;
    connected_components(g, components);
    EXPECT_EQ(components, 1);
  }
}

TEST(Generators, RewiringPreservesDegrees) {
  const Graph g = chung_lu(300, 900, 2.2, 60, 3);
  const Graph rewired = rewire_preserving_degrees(g, 5.0, 7);
  ASSERT_EQ(rewired.num_vertices(), g.num_vertices());
  ASSERT_EQ(rewired.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(rewired.degree(v), g.degree(v));
  }
}

TEST(Generators, RewiringChangesStructure) {
  const Graph g = chung_lu(300, 900, 2.2, 60, 3);
  const Graph rewired = rewire_preserving_degrees(g, 5.0, 7);
  EXPECT_NE(edge_list(rewired), edge_list(g));
  // Different seeds give different rewirings.
  const Graph other = rewire_preserving_degrees(g, 5.0, 8);
  EXPECT_NE(edge_list(rewired), edge_list(other));
  // Same seed reproduces.
  EXPECT_EQ(edge_list(rewired),
            edge_list(rewire_preserving_degrees(g, 5.0, 7)));
}

TEST(Generators, RewiringKeepsSimpleGraphInvariants) {
  const Graph g = erdos_renyi_gnm(120, 360, 5);
  const Graph rewired = rewire_preserving_degrees(g, 10.0, 3);
  // build_graph dedups; equal edge count proves no dup/self-loop was
  // ever introduced.
  EXPECT_EQ(rewired.num_edges(), g.num_edges());
}

TEST(Generators, RewiringTinyGraphsNoop) {
  const Graph g = testing_path();  // defined below via helper
  const Graph rewired = rewire_preserving_degrees(g, 5.0, 1);
  EXPECT_EQ(edge_list(rewired), edge_list(g));
}

TEST(Generators, DifferentSeedsDifferentGraphs) {
  EXPECT_NE(edge_list(contact_network(500, 10.0, 1)),
            edge_list(contact_network(500, 10.0, 2)));
  EXPECT_NE(edge_list(grid_road(400, 0.7, 1)),
            edge_list(grid_road(400, 0.7, 2)));
}

}  // namespace
}  // namespace fascia
