#include "treelet/free_trees.hpp"

#include <gtest/gtest.h>

#include <set>

#include "treelet/canonical.hpp"
#include "util/error.hpp"

namespace fascia {
namespace {

TEST(FreeTrees, CountsMatchOeisA000055) {
  // 1, 1, 1, 2, 3, 6, 11, 23, 47, 106, 235, 551 for k = 1..12.
  const std::size_t expected[] = {1, 1, 1, 2, 3, 6, 11, 23, 47, 106, 235, 551};
  for (int k = 1; k <= 12; ++k) {
    EXPECT_EQ(num_free_trees(k), expected[k - 1]) << "k=" << k;
  }
}

TEST(FreeTrees, PaperCitedCounts) {
  // §IV-B: "k = 7, 10, and 12 would imply 11, 106, and 551 possible
  // tree topologies, respectively."
  EXPECT_EQ(num_free_trees(7), 11u);
  EXPECT_EQ(num_free_trees(10), 106u);
  EXPECT_EQ(num_free_trees(12), 551u);
}

class FreeTreeProperties : public ::testing::TestWithParam<int> {};

TEST_P(FreeTreeProperties, PairwiseNonIsomorphic) {
  const int k = GetParam();
  const auto trees = all_free_trees(k);
  std::set<std::string> canon;
  for (const auto& tree : trees) {
    EXPECT_EQ(tree.size(), k);
    EXPECT_TRUE(canon.insert(ahu_free(tree)).second);
  }
}

TEST_P(FreeTreeProperties, DeterministicOrder) {
  const int k = GetParam();
  const auto first = all_free_trees(k);
  const auto second = all_free_trees(k);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].edges(), second[i].edges());
  }
}

TEST_P(FreeTreeProperties, ContainsPathAndStar) {
  const int k = GetParam();
  const auto trees = all_free_trees(k);
  const std::string path_canon = ahu_free(TreeTemplate::path(k));
  const std::string star_canon = ahu_free(TreeTemplate::star(k));
  int found_path = 0, found_star = 0;
  for (const auto& tree : trees) {
    found_path += (ahu_free(tree) == path_canon);
    found_star += (ahu_free(tree) == star_canon);
  }
  EXPECT_EQ(found_path, 1);
  EXPECT_EQ(found_star, 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FreeTreeProperties,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 10));

TEST(FreeTrees, LevelSequencesWellFormed) {
  for (int k = 2; k <= 8; ++k) {
    for (const auto& levels : all_level_sequences(k)) {
      ASSERT_EQ(static_cast<int>(levels.size()), k);
      EXPECT_EQ(levels[0], 1);
      for (std::size_t i = 1; i < levels.size(); ++i) {
        EXPECT_GE(levels[i], 2);
        EXPECT_LE(levels[i], levels[i - 1] + 1);
      }
    }
  }
}

TEST(FreeTrees, RootedCountsMatchOeisA000081) {
  // Rooted trees: 1, 1, 2, 4, 9, 20, 48, 115, 286, 719 for k = 1..10.
  const std::size_t expected[] = {1, 1, 2, 4, 9, 20, 48, 115, 286, 719};
  for (int k = 1; k <= 10; ++k) {
    EXPECT_EQ(all_level_sequences(k).size(), expected[k - 1]) << "k=" << k;
  }
}

TEST(FreeTrees, LevelSequenceToTree) {
  const TreeTemplate t = tree_from_level_sequence({1, 2, 3, 2});
  // 0 -> 1 -> 2, 0 -> 3.
  EXPECT_TRUE(t.has_edge(0, 1));
  EXPECT_TRUE(t.has_edge(1, 2));
  EXPECT_TRUE(t.has_edge(0, 3));
  EXPECT_THROW(tree_from_level_sequence({2, 1}), fascia::Error);
  EXPECT_THROW(tree_from_level_sequence({1, 3}), fascia::Error);
}

TEST(FreeTrees, SizeValidation) {
  EXPECT_THROW(all_free_trees(0), fascia::Error);
  EXPECT_THROW(all_free_trees(kMaxTemplateSize + 1), fascia::Error);
}

}  // namespace
}  // namespace fascia
