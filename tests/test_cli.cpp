#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace fascia {
namespace {

bool parse(Cli& cli, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return cli.parse(static_cast<int>(args.size()),
                   const_cast<char**>(args.data()));
}

TEST(Cli, DefaultsApply) {
  Cli cli("test");
  cli.add_common();
  ASSERT_TRUE(parse(cli, {}));
  EXPECT_FALSE(cli.flag("full"));
  EXPECT_EQ(cli.integer("seed"), 42);
  EXPECT_DOUBLE_EQ(cli.real("scale"), 1.0);
  EXPECT_EQ(cli.str("csv"), "");
}

TEST(Cli, FlagAndOptionForms) {
  Cli cli("test");
  cli.add_common();
  ASSERT_TRUE(parse(cli, {"--full", "--seed", "7", "--scale=0.25"}));
  EXPECT_TRUE(cli.flag("full"));
  EXPECT_EQ(cli.integer("seed"), 7);
  EXPECT_DOUBLE_EQ(cli.real("scale"), 0.25);
}

TEST(Cli, UnknownOptionThrows) {
  Cli cli("test");
  cli.add_common();
  EXPECT_THROW(parse(cli, {"--bogus"}), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  Cli cli("test");
  cli.add_common();
  EXPECT_THROW(parse(cli, {"--seed"}), std::invalid_argument);
}

TEST(Cli, FlagWithValueThrows) {
  Cli cli("test");
  cli.add_common();
  EXPECT_THROW(parse(cli, {"--full=1"}), std::invalid_argument);
}

TEST(Cli, PositionalArgumentThrows) {
  Cli cli("test");
  cli.add_common();
  EXPECT_THROW(parse(cli, {"stray"}), std::invalid_argument);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("test");
  cli.add_common();
  EXPECT_FALSE(parse(cli, {"--help"}));
}

TEST(Cli, UnregisteredLookupThrows) {
  Cli cli("test");
  EXPECT_THROW(cli.str("nothere"), std::logic_error);
}

TEST(Cli, FullScaleViaEnvironment) {
  Cli cli("test");
  cli.add_common();
  ASSERT_TRUE(parse(cli, {}));
  ::setenv("FASCIA_FULL", "1", 1);
  EXPECT_TRUE(cli.full_scale());
  ::unsetenv("FASCIA_FULL");
  EXPECT_FALSE(cli.full_scale());
}

TEST(Cli, UsageListsOptions) {
  Cli cli("my-tool");
  cli.add_option("alpha", "the alpha value", "3");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("my-tool"), std::string::npos);
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("the alpha value"), std::string::npos);
}

}  // namespace
}  // namespace fascia
