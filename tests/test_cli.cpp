#include "util/cli.hpp"

#include "util/error.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace fascia {
namespace {

bool parse(Cli& cli, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return cli.parse(static_cast<int>(args.size()),
                   const_cast<char**>(args.data()));
}

TEST(Cli, DefaultsApply) {
  Cli cli("test");
  cli.add_common();
  ASSERT_TRUE(parse(cli, {}));
  EXPECT_FALSE(cli.flag("full"));
  EXPECT_EQ(cli.integer("seed"), 42);
  EXPECT_DOUBLE_EQ(cli.real("scale"), 1.0);
  EXPECT_EQ(cli.str("csv"), "");
}

TEST(Cli, FlagAndOptionForms) {
  Cli cli("test");
  cli.add_common();
  ASSERT_TRUE(parse(cli, {"--full", "--seed", "7", "--scale=0.25"}));
  EXPECT_TRUE(cli.flag("full"));
  EXPECT_EQ(cli.integer("seed"), 7);
  EXPECT_DOUBLE_EQ(cli.real("scale"), 0.25);
}

TEST(Cli, UnknownOptionThrows) {
  Cli cli("test");
  cli.add_common();
  EXPECT_THROW(parse(cli, {"--bogus"}), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  Cli cli("test");
  cli.add_common();
  EXPECT_THROW(parse(cli, {"--seed"}), std::invalid_argument);
}

TEST(Cli, FlagWithValueThrows) {
  Cli cli("test");
  cli.add_common();
  EXPECT_THROW(parse(cli, {"--full=1"}), std::invalid_argument);
}

TEST(Cli, PositionalArgumentThrows) {
  Cli cli("test");
  cli.add_common();
  EXPECT_THROW(parse(cli, {"stray"}), std::invalid_argument);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("test");
  cli.add_common();
  EXPECT_FALSE(parse(cli, {"--help"}));
}

TEST(Cli, UnregisteredLookupThrows) {
  Cli cli("test");
  EXPECT_THROW(cli.str("nothere"), std::logic_error);
}

TEST(Cli, FullScaleViaEnvironment) {
  Cli cli("test");
  cli.add_common();
  ASSERT_TRUE(parse(cli, {}));
  ::setenv("FASCIA_FULL", "1", 1);
  EXPECT_TRUE(cli.full_scale());
  ::unsetenv("FASCIA_FULL");
  EXPECT_FALSE(cli.full_scale());
}

TEST(Cli, UsageListsOptions) {
  Cli cli("my-tool");
  cli.add_option("alpha", "the alpha value", "3");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("my-tool"), std::string::npos);
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("the alpha value"), std::string::npos);
}


// ---- error taxonomy -> exit codes ----------------------------------------

TEST(ExitCodes, CategoryMapping) {
  EXPECT_EQ(exit_code(ErrorCategory::kUsage), 2);
  EXPECT_EQ(exit_code(ErrorCategory::kBadInput), 3);
  EXPECT_EQ(exit_code(ErrorCategory::kResource), 4);
  EXPECT_EQ(exit_code(ErrorCategory::kInternal), 5);
}

TEST(ExitCodes, ErrorCarriesCategoryAndContext) {
  const Error error = bad_input("broken line", "edges.txt:52");
  EXPECT_EQ(error.category(), ErrorCategory::kBadInput);
  EXPECT_EQ(error.context(), "edges.txt:52");
  const std::string what = error.what();
  EXPECT_NE(what.find("edges.txt:52"), std::string::npos);
  EXPECT_NE(what.find("broken line"), std::string::npos);
}

TEST(ExitCodes, ExitCodeForExceptionTypes) {
  EXPECT_EQ(exit_code_for(usage_error("bad flag")), 2);
  EXPECT_EQ(exit_code_for(bad_input("bad file")), 3);
  EXPECT_EQ(exit_code_for(resource_error("out of budget")), 4);
  EXPECT_EQ(exit_code_for(internal_error("broken invariant")), 5);
  // CLI option parsing throws std::invalid_argument -> usage.
  EXPECT_EQ(exit_code_for(std::invalid_argument("--bogus")), 2);
  EXPECT_EQ(exit_code_for(std::bad_alloc()), 4);
  EXPECT_EQ(exit_code_for(std::runtime_error("anything else")), 5);
}

TEST(ExitCodes, CategoryNames) {
  EXPECT_STREQ(error_category_name(ErrorCategory::kUsage), "usage");
  EXPECT_STREQ(error_category_name(ErrorCategory::kBadInput), "bad input");
  EXPECT_STREQ(error_category_name(ErrorCategory::kResource), "resource");
  EXPECT_STREQ(error_category_name(ErrorCategory::kInternal), "internal");
}

}  // namespace
}  // namespace fascia
